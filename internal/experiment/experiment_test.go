package experiment

import (
	"math"
	"strings"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/zc"
	"truthinference/internal/testutil"
)

func methods() []core.Method {
	return []core.Method{direct.NewMV(), zc.New(), ds.New()}
}

func crowd() *dataset.Dataset {
	return testutil.Categorical(testutil.CrowdSpec{NumTasks: 120, NumWorkers: 12, Redundancy: 5, Seed: 1})
}

func TestEvaluateScoresCategorical(t *testing.T) {
	d := crowd()
	s := Evaluate(direct.NewMV(), d, core.Options{Seed: 1}, d.Truth, Config{Seed: 1})
	if s.Err != "" {
		t.Fatalf("unexpected error: %s", s.Err)
	}
	if s.Accuracy < 0.8 || s.Accuracy > 1 {
		t.Errorf("accuracy %.3f implausible", s.Accuracy)
	}
	if math.IsNaN(s.F1) {
		t.Error("F1 should be computed for decision datasets")
	}
	if !math.IsNaN(s.MAE) {
		t.Error("MAE should be NaN for categorical datasets")
	}
	if s.Seconds < 0 {
		t.Error("negative runtime")
	}
}

func TestEvaluateRecordsErrors(t *testing.T) {
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 10, NumWorkers: 4, Redundancy: 3, Seed: 1})
	s := Evaluate(direct.NewMV(), num, core.Options{}, num.Truth, Config{})
	if s.Err == "" {
		t.Error("MV on numeric data must record an error")
	}
	if !math.IsNaN(s.Accuracy) {
		t.Error("failed evaluation must report NaN metrics")
	}
}

func TestFullComparisonSkipsInapplicable(t *testing.T) {
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 30, NumWorkers: 5, Redundancy: 3, Seed: 2})
	all := []core.Method{direct.NewMV(), direct.NewMean(), direct.NewMedian()}
	scores := FullComparison(all, num, Config{Seed: 1})
	if len(scores) != 2 {
		t.Fatalf("got %d scores, want 2 (MV skipped)", len(scores))
	}
	for _, s := range scores {
		if s.Err != "" {
			t.Errorf("%s: %s", s.Method, s.Err)
		}
	}
}

func TestRedundancySweepShape(t *testing.T) {
	d := crowd()
	pts := RedundancySweep(methods(), d, []int{1, 3, 5}, Config{Seed: 1, Repeats: 2})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if len(p.Scores) != 3 {
			t.Fatalf("r=%d: %d scores", p.Redundancy, len(p.Scores))
		}
	}
	// Accuracy at r=5 must beat accuracy at r=1 for MV on this easy crowd
	// (the Figure 4 "quality increases with redundancy" shape).
	if pts[2].Scores[0].Accuracy <= pts[0].Scores[0].Accuracy {
		t.Errorf("MV accuracy did not increase with redundancy: r1=%.3f r5=%.3f",
			pts[0].Scores[0].Accuracy, pts[2].Scores[0].Accuracy)
	}
}

func TestQualificationVectorsBounds(t *testing.T) {
	d := crowd()
	acc, mse := QualificationVectors(d, 1)
	if mse != nil {
		t.Fatal("categorical dataset should not produce MSE vector")
	}
	for w, a := range acc {
		if math.IsNaN(a) {
			continue
		}
		if a < 0 || a > 1 {
			t.Errorf("worker %d qualification accuracy %v outside [0,1]", w, a)
		}
	}
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 3})
	acc2, mse2 := QualificationVectors(num, 1)
	if acc2 != nil {
		t.Fatal("numeric dataset should not produce accuracy vector")
	}
	for w, e := range mse2 {
		if !math.IsNaN(e) && e < 0 {
			t.Errorf("worker %d qualification MSE %v negative", w, e)
		}
	}
}

func TestQualificationVectorsNaNForWorkersWithoutTruth(t *testing.T) {
	d, err := dataset.New("nt", dataset.Decision, 2, 2, 2, []dataset.Answer{
		{Task: 0, Worker: 0, Value: 1}, // truth-bearing
		{Task: 1, Worker: 1, Value: 1}, // no truth
	}, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := QualificationVectors(d, 1)
	if math.IsNaN(acc[0]) {
		t.Error("worker 0 has truth-bearing answers, accuracy should be defined")
	}
	if !math.IsNaN(acc[1]) {
		t.Error("worker 1 has no truth-bearing answers, accuracy should be NaN")
	}
}

func TestQualificationTestOnlyQualifiedMethods(t *testing.T) {
	d := crowd()
	res := QualificationTest(methods(), d, Config{Seed: 1, Repeats: 2})
	// MV does not support qualification; ZC and D&S do.
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	for _, r := range res {
		if r.With.Err != "" || r.Without.Err != "" {
			t.Errorf("%s errored: %s / %s", r.Method, r.With.Err, r.Without.Err)
		}
		if math.IsNaN(r.DeltaAcc) {
			t.Errorf("%s: NaN delta", r.Method)
		}
	}
}

func TestHiddenTestEvaluatesOnRemainder(t *testing.T) {
	d := crowd()
	pts := HiddenTest(methods(), d, []int{0, 20, 50}, Config{Seed: 1, Repeats: 2})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		// Only golden-capable methods appear (ZC, D&S).
		if len(p.Scores) != 2 {
			t.Fatalf("p=%d: %d scores, want 2", p.Percent, len(p.Scores))
		}
		for _, s := range p.Scores {
			if s.Err != "" {
				t.Errorf("p=%d %s: %s", p.Percent, s.Method, s.Err)
			}
			if s.Accuracy < 0 || s.Accuracy > 1 {
				t.Errorf("p=%d %s: accuracy %v", p.Percent, s.Method, s.Accuracy)
			}
		}
	}
}

func TestRenderersIncludeMethodsAndValues(t *testing.T) {
	d := crowd()
	scores := FullComparison(methods(), d, Config{Seed: 1})
	table := RenderScores("crowd", true, scores)
	for _, m := range methods() {
		if !strings.Contains(table, m.Name()) {
			t.Errorf("RenderScores missing %s:\n%s", m.Name(), table)
		}
	}
	pts := RedundancySweep(methods(), d, []int{1, 2}, Config{Seed: 1})
	sweep := RenderSweep("crowd", pts, MetricAccuracy)
	if !strings.Contains(sweep, "r=1") || !strings.Contains(sweep, "r=2") {
		t.Errorf("RenderSweep missing redundancy columns:\n%s", sweep)
	}
	hp := HiddenTest(methods(), d, []int{0, 10}, Config{Seed: 1})
	hidden := RenderHidden("crowd", hp, MetricAccuracy)
	if !strings.Contains(hidden, "p=10%") {
		t.Errorf("RenderHidden missing percent columns:\n%s", hidden)
	}
	stats := RenderStatsTable([]dataset.Stats{dataset.ComputeStats(d)})
	if !strings.Contains(stats, "testcrowd") {
		t.Errorf("RenderStatsTable missing dataset name:\n%s", stats)
	}
	qr := QualificationTest(methods(), d, Config{Seed: 1})
	qual := RenderQualification("crowd", true, qr)
	if !strings.Contains(qual, "ZC") {
		t.Errorf("RenderQualification missing method:\n%s", qual)
	}
	hist := RenderHistogram("h", []float64{1, 2}, []int{3, 4})
	if !strings.Contains(hist, "h") {
		t.Error("RenderHistogram missing title")
	}
}

func TestMetricAccessors(t *testing.T) {
	s := Score{Accuracy: 0.1, F1: 0.2, MAE: 0.3, RMSE: 0.4}
	if MetricAccuracy.of(s) != 0.1 || MetricF1.of(s) != 0.2 || MetricMAE.of(s) != 0.3 || MetricRMSE.of(s) != 0.4 {
		t.Error("metric accessors broken")
	}
	if !MetricAccuracy.percent() || MetricMAE.percent() {
		t.Error("percent flags broken")
	}
}
