package experiment

// Scheduler equivalence suite: the batched cell scheduler must report
// numbers identical to the sequential loops it replaced, because every
// cell derives its RNGs from its own coordinates. (Score.Seconds is
// wall-clock and legitimately differs; everything else must match
// exactly. NaN fields — the unused metric family — compare as equal.)

import (
	"math"
	"testing"

	"truthinference/internal/core"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/glad"
	"truthinference/internal/methods/zc"
	"truthinference/internal/simulate"
)

func eqFloat(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }

func eqScore(a, b Score) bool {
	return a.Method == b.Method && eqFloat(a.Accuracy, b.Accuracy) && eqFloat(a.F1, b.F1) &&
		eqFloat(a.MAE, b.MAE) && eqFloat(a.RMSE, b.RMSE) && eqFloat(a.Iterations, b.Iterations) &&
		a.Converged == b.Converged && a.Err == b.Err
}

func schedMethods() []core.Method {
	return []core.Method{zc.New(), ds.New(), glad.New()}
}

func TestFullComparisonParallelEquivalence(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, 0.02)
	seq := FullComparison(schedMethods(), d, Config{Seed: 3, Repeats: 2, MaxIterations: 10})
	par := FullComparison(schedMethods(), d, Config{Seed: 3, Repeats: 2, MaxIterations: 10, Parallelism: 8})
	if len(seq) != len(par) {
		t.Fatalf("length %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !eqScore(seq[i], par[i]) {
			t.Errorf("score %d differs:\nsequential %+v\nparallel   %+v", i, seq[i], par[i])
		}
	}
}

func TestRedundancySweepParallelEquivalence(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, 0.02)
	seq := RedundancySweep(schedMethods(), d, []int{1, 2}, Config{Seed: 3, Repeats: 2, MaxIterations: 10})
	par := RedundancySweep(schedMethods(), d, []int{1, 2}, Config{Seed: 3, Repeats: 2, MaxIterations: 10, Parallelism: 8})
	for i := range seq {
		if seq[i].Redundancy != par[i].Redundancy {
			t.Fatalf("point %d redundancy %d vs %d", i, seq[i].Redundancy, par[i].Redundancy)
		}
		for j := range seq[i].Scores {
			if !eqScore(seq[i].Scores[j], par[i].Scores[j]) {
				t.Errorf("point %d score %d differs:\nsequential %+v\nparallel   %+v",
					i, j, seq[i].Scores[j], par[i].Scores[j])
			}
		}
	}
}

func TestQualificationTestParallelEquivalence(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, 0.02)
	seq := QualificationTest(schedMethods(), d, Config{Seed: 3, Repeats: 2, MaxIterations: 10})
	par := QualificationTest(schedMethods(), d, Config{Seed: 3, Repeats: 2, MaxIterations: 10, Parallelism: 8})
	if len(seq) != len(par) {
		t.Fatalf("length %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Method != par[i].Method ||
			!eqScore(seq[i].With, par[i].With) || !eqScore(seq[i].Without, par[i].Without) ||
			!eqFloat(seq[i].DeltaAcc, par[i].DeltaAcc) || !eqFloat(seq[i].DeltaF1, par[i].DeltaF1) {
			t.Errorf("result %d differs:\nsequential %+v\nparallel   %+v", i, seq[i], par[i])
		}
	}
}

func TestHiddenTestParallelEquivalence(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, 0.02)
	seq := HiddenTest(schedMethods(), d, []int{0, 20}, Config{Seed: 3, Repeats: 2, MaxIterations: 10})
	par := HiddenTest(schedMethods(), d, []int{0, 20}, Config{Seed: 3, Repeats: 2, MaxIterations: 10, Parallelism: 8})
	for i := range seq {
		if seq[i].Percent != par[i].Percent {
			t.Fatalf("point %d percent %d vs %d", i, seq[i].Percent, par[i].Percent)
		}
		for j := range seq[i].Scores {
			if !eqScore(seq[i].Scores[j], par[i].Scores[j]) {
				t.Errorf("point %d score %d differs:\nsequential %+v\nparallel   %+v",
					i, j, seq[i].Scores[j], par[i].Scores[j])
			}
		}
	}
}

// TestEvaluateParallelEquivalence covers the public per-method repeat
// runner, whose repetitions fan out on cfg.Parallelism.
func TestEvaluateParallelEquivalence(t *testing.T) {
	d := simulate.GenerateScaled(simulate.DPosSent, 1, 0.02)
	m := ds.New()
	seq := Evaluate(m, d, core.Options{Seed: 5}, d.Truth, Config{Repeats: 3, MaxIterations: 10})
	par := Evaluate(m, d, core.Options{Seed: 5}, d.Truth, Config{Repeats: 3, MaxIterations: 10, Parallelism: 8})
	if !eqScore(seq, par) {
		t.Errorf("Evaluate differs:\nsequential %+v\nparallel   %+v", seq, par)
	}
}
