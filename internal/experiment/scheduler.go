// Batched experiment scheduler: the Section-6 harness functions
// (FullComparison, RedundancySweep, QualificationTest, HiddenTest) flatten
// their nested method × configuration × repetition loops into a flat list
// of independent cells and fan the cells out over an engine worker pool.
//
// Determinism: every cell derives its randomness from the cell's own
// coordinates (cfg.Seed plus the same per-repetition strides the
// sequential loops used), writes into a preallocated result slot owned by
// the cell, and the per-method averages are folded from those slots in
// repetition order after the pool drains. Parallelism therefore never
// changes a quality number (accuracy, F1, MAE, RMSE, iterations,
// convergence). The one exception is Score.Seconds: it is a wall-clock
// measurement of each cell's inference call, and cells racing sibling
// cells for CPUs measure slower than they would alone — run with
// Parallelism 1 when the timing column itself is the result.

package experiment

import (
	"math"
	"time"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/engine"
	"truthinference/internal/metrics"
)

// repSeedStride is the per-repetition seed advance used by Evaluate (a
// prime, so repetition streams of adjacent base seeds do not collide).
const repSeedStride = 7919

// pool returns the worker pool the harness schedules cells on.
func (c Config) pool() *engine.Pool { return engine.New(c.workers()) }

func (c Config) workers() int {
	if c.Parallelism == 0 {
		return 1
	}
	return engine.New(c.Parallelism).Workers()
}

// mergeOpts folds the config-wide iteration cap and tolerance into opts,
// keeping any per-call overrides.
func (c Config) mergeOpts(opts core.Options) core.Options {
	if c.MaxIterations > 0 && opts.MaxIterations == 0 {
		opts.MaxIterations = c.MaxIterations
	}
	if c.Tolerance > 0 && opts.Tolerance == 0 {
		opts.Tolerance = c.Tolerance
	}
	return opts
}

// evaluateOnce runs one repetition of method m on d — one scheduler cell —
// and scores it against evalTruth.
func evaluateOnce(m core.Method, d *dataset.Dataset, opts core.Options, evalTruth map[int]float64) Score {
	s := Score{Method: m.Name(), Converged: true,
		Accuracy: math.NaN(), F1: math.NaN(), MAE: math.NaN(), RMSE: math.NaN()}
	start := time.Now()
	res, err := m.Infer(d, opts)
	s.Seconds = time.Since(start).Seconds()
	if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Iterations = float64(res.Iterations)
	s.Converged = res.Converged
	if d.Categorical() {
		s.Accuracy = metrics.Accuracy(res.Truth, evalTruth)
		s.F1 = metrics.F1(res.Truth, evalTruth, PositiveLabel)
	} else {
		s.MAE = metrics.MAE(res.Truth, evalTruth)
		s.RMSE = metrics.RMSE(res.Truth, evalTruth)
	}
	return s
}

// foldReps averages the per-repetition scores of one method in repetition
// order, reproducing the sequential stop-on-first-error semantics. nil
// entries (skipped repetitions, e.g. an empty hidden-test evaluation
// split) contribute nothing.
func foldReps(method string, reps []*Score) Score {
	acc := newAccumulator(method)
	for _, one := range reps {
		if one == nil {
			continue
		}
		if !acc.add(*one) {
			break
		}
	}
	return acc.finish()
}
