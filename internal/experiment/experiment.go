// Package experiment implements the paper's evaluation harness
// (Section 6): full-data comparisons of quality and running time
// (Table 6), redundancy sweeps (Figures 4–6), the qualification-test
// experiment (Table 7), the hidden-test experiment (Figures 7–9) and the
// crowd-data statistics (Table 5, Figures 2–3, the §6.2.1 consistency
// values). Rendering helpers print the same rows/series the paper
// reports.
package experiment

import (
	"math"
	"time"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/metrics"
	"truthinference/internal/randx"
)

// PositiveLabel is the decision-task positive class used by F1.
const PositiveLabel = 1

// Config controls an experiment run.
type Config struct {
	// Seed drives dataset sub-sampling and method seeds.
	Seed int64
	// Repeats is the number of repetitions to average (the paper uses 30
	// for redundancy sweeps and 100 for golden-task experiments; the
	// default 1 runs once).
	Repeats int
	// MaxIterations caps iterative methods when positive (useful to
	// bound harness runtime at full dataset scale).
	MaxIterations int
	// Tolerance overrides the convergence tolerance when positive.
	Tolerance float64
}

func (c Config) repeats() int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	return 1
}

// Score is one method's evaluation on one dataset configuration, averaged
// over Config.Repeats runs.
type Score struct {
	Method   string
	Accuracy float64
	F1       float64
	MAE      float64
	RMSE     float64
	// Seconds is the mean wall-clock inference time.
	Seconds float64
	// Iterations is the mean iteration count.
	Iterations float64
	// Converged reports whether every repetition converged.
	Converged bool
	// Err is non-empty if the method failed (unsupported combination or
	// inference error); metric fields are NaN in that case.
	Err string
}

// Evaluate runs method m on d once per repeat, evaluating against
// evalTruth (pass d.Truth for the standard setup, or the non-golden
// remainder for hidden tests). Golden and qualification options flow
// through opts; opts.Seed is advanced per repetition.
func Evaluate(m core.Method, d *dataset.Dataset, opts core.Options, evalTruth map[int]float64, cfg Config) Score {
	s := Score{Method: m.Name(), Converged: true,
		Accuracy: math.NaN(), F1: math.NaN(), MAE: math.NaN(), RMSE: math.NaN()}
	if cfg.MaxIterations > 0 && opts.MaxIterations == 0 {
		opts.MaxIterations = cfg.MaxIterations
	}
	if cfg.Tolerance > 0 && opts.Tolerance == 0 {
		opts.Tolerance = cfg.Tolerance
	}
	var accSum, f1Sum, maeSum, rmseSum, secSum, iterSum float64
	n := 0
	for rep := 0; rep < cfg.repeats(); rep++ {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(rep)*7919
		start := time.Now()
		res, err := m.Infer(d, runOpts)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			s.Err = err.Error()
			return s
		}
		n++
		secSum += elapsed
		iterSum += float64(res.Iterations)
		if !res.Converged {
			s.Converged = false
		}
		if d.Categorical() {
			accSum += metrics.Accuracy(res.Truth, evalTruth)
			f1Sum += metrics.F1(res.Truth, evalTruth, PositiveLabel)
		} else {
			maeSum += metrics.MAE(res.Truth, evalTruth)
			rmseSum += metrics.RMSE(res.Truth, evalTruth)
		}
	}
	fn := float64(n)
	s.Seconds = secSum / fn
	s.Iterations = iterSum / fn
	if d.Categorical() {
		s.Accuracy = accSum / fn
		s.F1 = f1Sum / fn
	} else {
		s.MAE = maeSum / fn
		s.RMSE = rmseSum / fn
	}
	return s
}

// FullComparison reproduces one dataset column-group of Table 6: every
// applicable method evaluated on the complete dataset. Methods whose
// capabilities exclude the dataset's task type are skipped (the paper
// marks them "×").
func FullComparison(methods []core.Method, d *dataset.Dataset, cfg Config) []Score {
	var out []Score
	for _, m := range methods {
		if !m.Capabilities().SupportsType(d.Type) {
			continue
		}
		out = append(out, Evaluate(m, d, core.Options{Seed: cfg.Seed}, d.Truth, cfg))
	}
	return out
}

// accumulator averages repeated Scores of one method. A failed repetition
// poisons the accumulator; finish then reports the error with NaN metrics.
type accumulator struct {
	out                                             Score
	accSum, f1Sum, maeSum, rmseSum, secSum, iterSum float64
	n                                               int
}

func newAccumulator(method string) *accumulator {
	return &accumulator{out: Score{Method: method, Converged: true}}
}

// add folds in one repetition; it returns false (and records the error)
// when the repetition failed, signalling the caller to stop repeating.
func (a *accumulator) add(one Score) bool {
	if one.Err != "" {
		a.out.Err = one.Err
		return false
	}
	a.n++
	a.accSum += one.Accuracy
	a.f1Sum += one.F1
	a.maeSum += one.MAE
	a.rmseSum += one.RMSE
	a.secSum += one.Seconds
	a.iterSum += one.Iterations
	if !one.Converged {
		a.out.Converged = false
	}
	return true
}

func (a *accumulator) finish() Score {
	if a.n == 0 || a.out.Err != "" {
		a.out.Accuracy, a.out.F1 = math.NaN(), math.NaN()
		a.out.MAE, a.out.RMSE = math.NaN(), math.NaN()
		return a.out
	}
	fn := float64(a.n)
	a.out.Accuracy = a.accSum / fn
	a.out.F1 = a.f1Sum / fn
	a.out.MAE = a.maeSum / fn
	a.out.RMSE = a.rmseSum / fn
	a.out.Seconds = a.secSum / fn
	a.out.Iterations = a.iterSum / fn
	return a.out
}

// single wraps cfg for one-repetition inner evaluations.
func (c Config) single() Config {
	return Config{Seed: c.Seed, Repeats: 1, MaxIterations: c.MaxIterations, Tolerance: c.Tolerance}
}

// SweepPoint is one redundancy level of a Figure-4/5/6 series.
type SweepPoint struct {
	Redundancy int
	Scores     []Score
}

// RedundancySweep reproduces Figures 4–6: for each redundancy r it
// sub-samples r answers per task (fresh sample per repetition) and
// evaluates every applicable method, averaging over Config.Repeats.
func RedundancySweep(methods []core.Method, d *dataset.Dataset, rs []int, cfg Config) []SweepPoint {
	out := make([]SweepPoint, 0, len(rs))
	for _, r := range rs {
		point := SweepPoint{Redundancy: r}
		for _, m := range methods {
			if !m.Capabilities().SupportsType(d.Type) {
				continue
			}
			acc := newAccumulator(m.Name())
			for rep := 0; rep < cfg.repeats(); rep++ {
				rng := randx.New(cfg.Seed + int64(r)*1_000_003 + int64(rep)*97)
				sub := d.SampleRedundancy(r, rng)
				one := Evaluate(m, sub, core.Options{Seed: cfg.Seed + int64(rep)}, sub.Truth, cfg.single())
				if !acc.add(one) {
					break
				}
			}
			point.Scores = append(point.Scores, acc.finish())
		}
		out = append(out, point)
	}
	return out
}
