// Package experiment implements the paper's evaluation harness
// (Section 6): full-data comparisons of quality and running time
// (Table 6), redundancy sweeps (Figures 4–6), the qualification-test
// experiment (Table 7), the hidden-test experiment (Figures 7–9) and the
// crowd-data statistics (Table 5, Figures 2–3, the §6.2.1 consistency
// values). Rendering helpers print the same rows/series the paper
// reports.
package experiment

import (
	"math"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/randx"
)

// PositiveLabel is the decision-task positive class used by F1.
const PositiveLabel = 1

// Config controls an experiment run.
type Config struct {
	// Seed drives dataset sub-sampling and method seeds.
	Seed int64
	// Repeats is the number of repetitions to average (the paper uses 30
	// for redundancy sweeps and 100 for golden-task experiments; the
	// default 1 runs once).
	Repeats int
	// MaxIterations caps iterative methods when positive (useful to
	// bound harness runtime at full dataset scale).
	MaxIterations int
	// Tolerance overrides the convergence tolerance when positive.
	Tolerance float64
	// Parallelism is the number of experiment cells — (method × dataset
	// configuration × repetition) triples — the harness runs
	// concurrently. 0 or 1 runs sequentially; negative values use one
	// worker per available CPU. Every cell seeds its own RNGs from the
	// cell coordinates, so results are identical at every parallelism
	// level (see scheduler.go).
	Parallelism int
}

func (c Config) repeats() int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	return 1
}

// Score is one method's evaluation on one dataset configuration, averaged
// over Config.Repeats runs.
type Score struct {
	Method   string
	Accuracy float64
	F1       float64
	MAE      float64
	RMSE     float64
	// Seconds is the mean wall-clock inference time.
	Seconds float64
	// Iterations is the mean iteration count.
	Iterations float64
	// Converged reports whether every repetition converged.
	Converged bool
	// Err is non-empty if the method failed (unsupported combination or
	// inference error); metric fields are NaN in that case.
	Err string
}

// Evaluate runs method m on d once per repeat, evaluating against
// evalTruth (pass d.Truth for the standard setup, or the non-golden
// remainder for hidden tests). Golden and qualification options flow
// through opts; opts.Seed is advanced per repetition. Repetitions are
// independent cells and fan out over cfg.Parallelism workers.
func Evaluate(m core.Method, d *dataset.Dataset, opts core.Options, evalTruth map[int]float64, cfg Config) Score {
	opts = cfg.mergeOpts(opts)
	reps := make([]*Score, cfg.repeats())
	cfg.pool().Each(len(reps), func(rep int) {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(rep)*repSeedStride
		one := evaluateOnce(m, d, runOpts, evalTruth)
		reps[rep] = &one
	})
	return foldReps(m.Name(), reps)
}

// FullComparison reproduces one dataset column-group of Table 6: every
// applicable method evaluated on the complete dataset. Methods whose
// capabilities exclude the dataset's task type are skipped (the paper
// marks them "×"). The (method × repetition) cells run concurrently on
// cfg.Parallelism workers.
func FullComparison(methods []core.Method, d *dataset.Dataset, cfg Config) []Score {
	var applicable []core.Method
	for _, m := range methods {
		if m.Capabilities().SupportsType(d.Type) {
			applicable = append(applicable, m)
		}
	}
	nr := cfg.repeats()
	cells := make([]*Score, len(applicable)*nr)
	cfg.pool().Each(len(cells), func(c int) {
		mi, rep := c/nr, c%nr
		opts := cfg.mergeOpts(core.Options{Seed: cfg.Seed + int64(rep)*repSeedStride})
		one := evaluateOnce(applicable[mi], d, opts, d.Truth)
		cells[c] = &one
	})
	out := make([]Score, len(applicable))
	for mi, m := range applicable {
		out[mi] = foldReps(m.Name(), cells[mi*nr:(mi+1)*nr])
	}
	return out
}

// accumulator averages repeated Scores of one method. A failed repetition
// poisons the accumulator; finish then reports the error with NaN metrics.
type accumulator struct {
	out                                             Score
	accSum, f1Sum, maeSum, rmseSum, secSum, iterSum float64
	n                                               int
}

func newAccumulator(method string) *accumulator {
	return &accumulator{out: Score{Method: method, Converged: true}}
}

// add folds in one repetition; it returns false (and records the error)
// when the repetition failed, signalling the caller to stop repeating.
func (a *accumulator) add(one Score) bool {
	if one.Err != "" {
		a.out.Err = one.Err
		return false
	}
	a.n++
	a.accSum += one.Accuracy
	a.f1Sum += one.F1
	a.maeSum += one.MAE
	a.rmseSum += one.RMSE
	a.secSum += one.Seconds
	a.iterSum += one.Iterations
	if !one.Converged {
		a.out.Converged = false
	}
	return true
}

func (a *accumulator) finish() Score {
	if a.n == 0 || a.out.Err != "" {
		a.out.Accuracy, a.out.F1 = math.NaN(), math.NaN()
		a.out.MAE, a.out.RMSE = math.NaN(), math.NaN()
		return a.out
	}
	fn := float64(a.n)
	a.out.Accuracy = a.accSum / fn
	a.out.F1 = a.f1Sum / fn
	a.out.MAE = a.maeSum / fn
	a.out.RMSE = a.rmseSum / fn
	a.out.Seconds = a.secSum / fn
	a.out.Iterations = a.iterSum / fn
	return a.out
}

// SweepPoint is one redundancy level of a Figure-4/5/6 series.
type SweepPoint struct {
	Redundancy int
	Scores     []Score
}

// RedundancySweep reproduces Figures 4–6: for each redundancy r it
// sub-samples r answers per task (fresh sample per repetition) and
// evaluates every applicable method, averaging over Config.Repeats. The
// (redundancy × method × repetition) cells run concurrently on
// cfg.Parallelism workers; each cell re-derives its sub-sample from the
// (seed, redundancy, repetition) coordinates, exactly as the sequential
// loops did.
func RedundancySweep(methods []core.Method, d *dataset.Dataset, rs []int, cfg Config) []SweepPoint {
	var applicable []core.Method
	for _, m := range methods {
		if m.Capabilities().SupportsType(d.Type) {
			applicable = append(applicable, m)
		}
	}
	nm, nr := len(applicable), cfg.repeats()
	cells := make([]*Score, len(rs)*nm*nr)
	cfg.pool().Each(len(cells), func(c int) {
		ri, rem := c/(nm*nr), c%(nm*nr)
		mi, rep := rem/nr, rem%nr
		r := rs[ri]
		rng := randx.New(cfg.Seed + int64(r)*1_000_003 + int64(rep)*97)
		sub := d.SampleRedundancy(r, rng)
		opts := cfg.mergeOpts(core.Options{Seed: cfg.Seed + int64(rep)})
		one := evaluateOnce(applicable[mi], sub, opts, sub.Truth)
		cells[c] = &one
	})
	out := make([]SweepPoint, 0, len(rs))
	for ri, r := range rs {
		point := SweepPoint{Redundancy: r}
		for mi, m := range applicable {
			base := (ri*nm + mi) * nr
			point.Scores = append(point.Scores, foldReps(m.Name(), cells[base:base+nr]))
		}
		out = append(out, point)
	}
	return out
}
