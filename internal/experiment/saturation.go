package experiment

import "math"

// SaturationRedundancy addresses the paper's future-work question §7(3):
// "how to estimate the data redundancy with stable quality?". Given a
// redundancy sweep for one method, it returns the smallest redundancy r̂
// whose metric is within epsilon of the best value attained anywhere in
// the sweep — the point past which buying more answers stops paying.
//
// metric selects the quality column; for error metrics (MAE, RMSE) lower
// is better and the comparison flips accordingly. The method is selected
// by name within each SweepPoint. It returns -1 when the method is absent
// or every point errored.
func SaturationRedundancy(points []SweepPoint, method string, metric Metric, epsilon float64) int {
	lowerBetter := metric == MetricMAE || metric == MetricRMSE
	best := math.Inf(-1)
	if lowerBetter {
		best = math.Inf(1)
	}
	values := make([]float64, 0, len(points))
	reds := make([]int, 0, len(points))
	for _, p := range points {
		for _, s := range p.Scores {
			if s.Method != method {
				continue
			}
			v := metric.of(s)
			if math.IsNaN(v) {
				continue
			}
			values = append(values, v)
			reds = append(reds, p.Redundancy)
			if lowerBetter && v < best || !lowerBetter && v > best {
				best = v
			}
		}
	}
	if len(values) == 0 {
		return -1
	}
	for i, v := range values {
		if lowerBetter && v <= best+epsilon || !lowerBetter && v >= best-epsilon {
			return reds[i]
		}
	}
	return reds[len(reds)-1]
}

// MarginalGain estimates the quality improvement of adding one more answer
// per task at redundancy r, by linear interpolation of the sweep — the
// paper's companion question "is it possible to estimate the improvement
// with more data redundancy?". It returns NaN when r is outside the swept
// range or the method is absent.
func MarginalGain(points []SweepPoint, method string, metric Metric, r int) float64 {
	var lo, hi *struct {
		red int
		val float64
	}
	for _, p := range points {
		for _, s := range p.Scores {
			if s.Method != method || math.IsNaN(metric.of(s)) {
				continue
			}
			entry := &struct {
				red int
				val float64
			}{p.Redundancy, metric.of(s)}
			if p.Redundancy <= r && (lo == nil || p.Redundancy > lo.red) {
				lo = entry
			}
			if p.Redundancy > r && (hi == nil || p.Redundancy < hi.red) {
				hi = entry
			}
		}
	}
	if lo == nil || hi == nil || hi.red == lo.red {
		return math.NaN()
	}
	return (hi.val - lo.val) / float64(hi.red-lo.red)
}
