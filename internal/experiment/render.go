package experiment

import (
	"fmt"
	"math"
	"strings"

	"truthinference/internal/dataset"
)

// RenderStatsTable formats Table 5 (dataset statistics) plus the §6.2.1
// consistency column for a set of datasets.
func RenderStatsTable(stats []dataset.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-13s %9s %8s %9s %7s %6s %12s\n",
		"Dataset", "Type", "#tasks", "#truth", "|V|", "|V|/n", "|W|", "Consistency")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-11s %-13s %9d %8d %9d %7.1f %6d %12.2f\n",
			s.Name, s.Type.String(), s.NumTasks, s.NumTruth, s.NumAnswers, s.Redundancy, s.NumWorkers, s.Consistency)
	}
	return b.String()
}

// RenderScores formats one dataset's Table-6 column group. Categorical
// datasets show Accuracy/F1, numeric ones MAE/RMSE; both show time.
func RenderScores(name string, categorical bool, scores []Score) string {
	var b strings.Builder
	if categorical {
		fmt.Fprintf(&b, "%s\n%-9s %9s %9s %9s %6s\n", name, "Method", "Accuracy", "F1", "Time", "Iter")
		for _, s := range scores {
			if s.Err != "" {
				fmt.Fprintf(&b, "%-9s %9s %9s %9s %6s  # %s\n", s.Method, "×", "×", "×", "×", s.Err)
				continue
			}
			fmt.Fprintf(&b, "%-9s %8.2f%% %8.2f%% %8.2fs %6.1f\n", s.Method, 100*s.Accuracy, 100*s.F1, s.Seconds, s.Iterations)
		}
	} else {
		fmt.Fprintf(&b, "%s\n%-9s %9s %9s %9s %6s\n", name, "Method", "MAE", "RMSE", "Time", "Iter")
		for _, s := range scores {
			if s.Err != "" {
				fmt.Fprintf(&b, "%-9s %9s %9s %9s %6s  # %s\n", s.Method, "×", "×", "×", "×", s.Err)
				continue
			}
			fmt.Fprintf(&b, "%-9s %9.2f %9.2f %8.2fs %6.1f\n", s.Method, s.MAE, s.RMSE, s.Seconds, s.Iterations)
		}
	}
	return b.String()
}

// Metric selects which Score field a figure series plots.
type Metric int

// The four paper metrics.
const (
	MetricAccuracy Metric = iota
	MetricF1
	MetricMAE
	MetricRMSE
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricAccuracy:
		return "Accuracy"
	case MetricF1:
		return "F1-score"
	case MetricMAE:
		return "MAE"
	case MetricRMSE:
		return "RMSE"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) of(s Score) float64 {
	switch m {
	case MetricAccuracy:
		return s.Accuracy
	case MetricF1:
		return s.F1
	case MetricMAE:
		return s.MAE
	default:
		return s.RMSE
	}
}

// percent reports whether the metric is conventionally shown as a
// percentage.
func (m Metric) percent() bool { return m == MetricAccuracy || m == MetricF1 }

// RenderSweep formats a redundancy-sweep series (Figures 4–6) as a
// methods × redundancy table of the chosen metric.
func RenderSweep(name string, points []SweepPoint, metric Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s by data redundancy r)\n", name, metric)
	if len(points) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-9s", "Method")
	for _, p := range points {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("r=%d", p.Redundancy))
	}
	b.WriteByte('\n')
	for mi := range points[0].Scores {
		fmt.Fprintf(&b, "%-9s", points[0].Scores[mi].Method)
		for _, p := range points {
			writeMetricCell(&b, metric, p.Scores[mi])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderHidden formats a hidden-test series (Figures 7–9) as a methods ×
// golden-percentage table of the chosen metric.
func RenderHidden(name string, points []HiddenPoint, metric Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s by %% of known truth)\n", name, metric)
	if len(points) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-9s", "Method")
	for _, p := range points {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("p=%d%%", p.Percent))
	}
	b.WriteByte('\n')
	for mi := range points[0].Scores {
		fmt.Fprintf(&b, "%-9s", points[0].Scores[mi].Method)
		for _, p := range points {
			writeMetricCell(&b, metric, p.Scores[mi])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderQualification formats Table 7: quality with qualification test and
// the benefit Δ per method.
func RenderQualification(name string, categorical bool, results []QualificationResult) string {
	var b strings.Builder
	if categorical {
		fmt.Fprintf(&b, "%s (qualification test)\n%-9s %12s %12s %12s %12s\n",
			name, "Method", "Acc (c̃)", "ΔAcc", "F1 (c̃)", "ΔF1")
		for _, r := range results {
			if r.With.Err != "" {
				fmt.Fprintf(&b, "%-9s  # %s\n", r.Method, r.With.Err)
				continue
			}
			fmt.Fprintf(&b, "%-9s %11.2f%% %+11.2f%% %11.2f%% %+11.2f%%\n",
				r.Method, 100*r.With.Accuracy, 100*r.DeltaAcc, 100*r.With.F1, 100*r.DeltaF1)
		}
	} else {
		fmt.Fprintf(&b, "%s (qualification test)\n%-9s %12s %12s %12s %12s\n",
			name, "Method", "MAE (c̃)", "ΔMAE", "RMSE (c̃)", "ΔRMSE")
		for _, r := range results {
			if r.With.Err != "" {
				fmt.Fprintf(&b, "%-9s  # %s\n", r.Method, r.With.Err)
				continue
			}
			fmt.Fprintf(&b, "%-9s %12.2f %+12.2f %12.2f %+12.2f\n",
				r.Method, r.With.MAE, r.DeltaMAE, r.With.RMSE, r.DeltaRMS)
		}
	}
	return b.String()
}

// RenderHistogram formats a histogram (Figures 2–3) as edge/count rows.
func RenderHistogram(title string, edges []float64, counts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	lo := 0.0
	for i, e := range edges {
		bar := strings.Repeat("#", scaleBar(counts[i], counts))
		fmt.Fprintf(&b, "  [%8.1f, %8.1f) %6d %s\n", lo, e, counts[i], bar)
		lo = e
	}
	return b.String()
}

func writeMetricCell(b *strings.Builder, metric Metric, s Score) {
	v := metric.of(s)
	switch {
	case s.Err != "" || math.IsNaN(v):
		fmt.Fprintf(b, " %8s", "×")
	case metric.percent():
		fmt.Fprintf(b, " %7.2f%%", 100*v)
	default:
		fmt.Fprintf(b, " %8.2f", v)
	}
}

func scaleBar(c int, counts []int) int {
	maxC := 1
	for _, x := range counts {
		if x > maxC {
			maxC = x
		}
	}
	const width = 40
	return c * width / maxC
}
