package simulate

import (
	"math"
	"reflect"
	"testing"

	"truthinference/internal/dataset"
)

// TestTable5Calibration checks every generator reproduces the published
// Table-5 statistics exactly at full scale: task, answer, worker and
// truth-subset counts.
func TestTable5Calibration(t *testing.T) {
	want := []struct {
		kind             Kind
		tasks, answers   int
		workers, truth   int
		typ              dataset.TaskType
		choices          int
		redundancyApprox float64
	}{
		{DProduct, 8315, 24945, 176, 8315, dataset.Decision, 2, 3},
		{DPosSent, 1000, 20000, 85, 1000, dataset.Decision, 2, 20},
		{SRel, 20232, 98453, 766, 4460, dataset.SingleChoice, 4, 4.9},
		{SAdult, 11040, 92721, 825, 1517, dataset.SingleChoice, 4, 8.4},
		{NEmotion, 700, 7000, 38, 700, dataset.Numeric, 0, 10},
	}
	for _, c := range want {
		d := Generate(c.kind, 1)
		if d.NumTasks != c.tasks {
			t.Errorf("%s: tasks = %d, want %d", c.kind, d.NumTasks, c.tasks)
		}
		if len(d.Answers) != c.answers {
			t.Errorf("%s: answers = %d, want %d", c.kind, len(d.Answers), c.answers)
		}
		if d.NumWorkers != c.workers {
			t.Errorf("%s: workers = %d, want %d", c.kind, d.NumWorkers, c.workers)
		}
		if len(d.Truth) != c.truth {
			t.Errorf("%s: truth = %d, want %d", c.kind, len(d.Truth), c.truth)
		}
		if d.Type != c.typ || d.NumChoices != c.choices {
			t.Errorf("%s: type/choices = %v/%d", c.kind, d.Type, d.NumChoices)
		}
		if r := d.Redundancy(); math.Abs(r-c.redundancyApprox) > 0.1 {
			t.Errorf("%s: redundancy %.2f, want ≈ %.1f", c.kind, r, c.redundancyApprox)
		}
	}
}

func TestDProductTruthSkew(t *testing.T) {
	d := Generate(DProduct, 1)
	pos := 0
	for _, v := range d.Truth {
		if v == 1 {
			pos++
		}
	}
	if pos != 1101 {
		t.Errorf("positive truths = %d, want 1101 (§6.1.2)", pos)
	}
}

func TestDPosSentTruthBalance(t *testing.T) {
	d := Generate(DPosSent, 1)
	pos := 0
	for _, v := range d.Truth {
		if v == 1 {
			pos++
		}
	}
	if pos != 528 {
		t.Errorf("positive truths = %d, want 528", pos)
	}
}

func TestDeterminism(t *testing.T) {
	for _, k := range Kinds {
		a := GenerateScaled(k, 7, 0.05)
		b := GenerateScaled(k, 7, 0.05)
		if !reflect.DeepEqual(a.Answers, b.Answers) {
			t.Errorf("%s: answers differ across equal-seed generations", k)
		}
		c := GenerateScaled(k, 8, 0.05)
		if reflect.DeepEqual(a.Answers, c.Answers) {
			t.Errorf("%s: answers identical across different seeds", k)
		}
	}
}

// TestScaleOutOfRangePanics pins the fail-fast contract: a nonsensical
// scale is a caller bug and must not be silently promoted to full scale
// (which once made `benchall -scale 0` run the paper-sized datasets).
func TestScaleOutOfRangePanics(t *testing.T) {
	for _, scale := range []float64{0, -0.5, 1.001, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GenerateScaled(scale=%v) did not panic", scale)
				}
			}()
			GenerateScaled(DProduct, 1, scale)
		}()
	}
}

func TestScaledGenerationValidAndProportional(t *testing.T) {
	for _, k := range Kinds {
		full := Generate(k, 1)
		half := GenerateScaled(k, 1, 0.5)
		ratio := float64(half.NumTasks) / float64(full.NumTasks)
		if math.Abs(ratio-0.5) > 0.02 {
			t.Errorf("%s: scaled task ratio %.3f, want ≈ 0.5", k, ratio)
		}
		// Redundancy must be preserved by scaling.
		if math.Abs(half.Redundancy()-full.Redundancy()) > 0.35 {
			t.Errorf("%s: redundancy %.2f vs full %.2f", k, half.Redundancy(), full.Redundancy())
		}
	}
}

func TestLongTailRedundancy(t *testing.T) {
	// Figure 2's long tail: the busiest worker must answer far more tasks
	// than the median worker, and most workers answer few tasks.
	for _, k := range []Kind{DProduct, SRel, SAdult} {
		d := GenerateScaled(k, 1, 0.3)
		red := dataset.WorkerRedundancy(d)
		maxR, sum := 0, 0
		for _, r := range red {
			if r > maxR {
				maxR = r
			}
			sum += r
		}
		mean := float64(sum) / float64(len(red))
		if float64(maxR) < 4*mean {
			t.Errorf("%s: max redundancy %d < 4×mean %.1f — no long tail", k, maxR, mean)
		}
	}
}

func TestWorkerQualityBands(t *testing.T) {
	// §6.2.3 reports the decision crowds' mean worker accuracy ≈ 0.79 and
	// N_Emotion's mean worker RMSE ≈ 28.9; hold the simulators inside a
	// generous band around those anchors.
	dp := Generate(DProduct, 1)
	if m := dataset.MeanWorkerQuality(dataset.WorkerAccuracy(dp)); m < 0.7 || m > 0.92 {
		t.Errorf("D_Product mean worker accuracy %.3f outside [0.70, 0.92]", m)
	}
	ps := Generate(DPosSent, 1)
	if m := dataset.MeanWorkerQuality(dataset.WorkerAccuracy(ps)); m < 0.68 || m > 0.9 {
		t.Errorf("D_PosSent mean worker accuracy %.3f outside [0.68, 0.90]", m)
	}
	sr := Generate(SRel, 1)
	if m := dataset.MeanWorkerQuality(dataset.WorkerAccuracy(sr)); m < 0.4 || m > 0.62 {
		t.Errorf("S_Rel mean worker accuracy %.3f outside [0.40, 0.62]", m)
	}
	ne := Generate(NEmotion, 1)
	if m := dataset.MeanWorkerQuality(dataset.WorkerRMSE(ne)); m < 20 || m > 40 {
		t.Errorf("N_Emotion mean worker RMSE %.1f outside [20, 40]", m)
	}
}

func TestNEmotionAnswersInRange(t *testing.T) {
	d := Generate(NEmotion, 1)
	for _, a := range d.Answers {
		if a.Value < -100 || a.Value > 100 {
			t.Fatalf("answer %v outside [-100, 100]", a.Value)
		}
	}
	for _, v := range d.Truth {
		if v < -100 || v > 100 {
			t.Fatalf("truth %v outside [-100, 100]", v)
		}
	}
}

func TestKindParsing(t *testing.T) {
	for _, k := range Kinds {
		got, err := KindFromName(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromName(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := KindFromName("nope"); err == nil {
		t.Error("KindFromName(nope) should fail")
	}
}

func TestEachTaskAnsweredByDistinctWorkers(t *testing.T) {
	for _, k := range Kinds {
		d := GenerateScaled(k, 1, 0.05)
		for task := 0; task < d.NumTasks; task++ {
			seen := map[int]bool{}
			for _, ai := range d.TaskAnswers(task) {
				w := d.Answers[ai].Worker
				if seen[w] {
					t.Fatalf("%s: worker %d answered task %d twice", k, w, task)
				}
				seen[w] = true
			}
		}
	}
}
