// Package simulate generates synthetic equivalents of the five real
// crowdsourcing datasets used by the paper's evaluation (Table 5):
// D_Product, D_PosSent, S_Rel, S_Adult and N_Emotion. The original crowd
// answers are hosted on a project page that is not available offline, so
// each generator is calibrated to the published statistics instead:
//
//   - task, answer and worker counts and the truth-bearing subset size
//     (Table 5);
//   - truth skew (D_Product 1101 T / 7214 F ≈ the 0.12:0.88 ratio of
//     §6.1.2; D_PosSent 528/472);
//   - long-tail worker redundancy via Zipf task assignment (Figure 2);
//   - worker quality mixtures matching the Figure 3 histograms and the
//     §6.2.3 mean accuracies (0.79, 0.79, 0.53, 0.65) and mean RMSE
//     (≈28.9 for N_Emotion);
//   - the structural properties §6.3 attributes each dataset's method
//     ranking to: asymmetric per-class accuracies in D_Product (workers
//     spot different products easily but same products rarely — high
//     q_FF, low q_TT), systematic class confusion in S_Rel, heavy
//     near-random high-volume workers in S_Adult, and shared per-task
//     bias in N_Emotion (which is why Mean beats the weighted methods).
//
// Because these are the properties the paper's findings hinge on, the
// benchmark harness exercises the same code paths and reproduces the same
// qualitative shapes even though absolute numbers differ from the 2017
// crowd.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"truthinference/internal/dataset"
	"truthinference/internal/randx"
)

// Kind selects one of the five benchmark datasets.
type Kind int

const (
	// DProduct is the entity-resolution decision dataset (Table 5 row 1).
	DProduct Kind = iota
	// DPosSent is the tweet-sentiment decision dataset (row 2).
	DPosSent
	// SRel is the 4-choice relevance-judging dataset (row 3).
	SRel
	// SAdult is the 4-choice website adult-rating dataset (row 4).
	SAdult
	// NEmotion is the numeric emotion-scoring dataset (row 5).
	NEmotion
)

// Kinds lists all five datasets in Table-5 order.
var Kinds = []Kind{DProduct, DPosSent, SRel, SAdult, NEmotion}

// String implements fmt.Stringer with the paper's dataset names.
func (k Kind) String() string {
	switch k {
	case DProduct:
		return "D_Product"
	case DPosSent:
		return "D_PosSent"
	case SRel:
		return "S_Rel"
	case SAdult:
		return "S_Adult"
	case NEmotion:
		return "N_Emotion"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromName parses a paper dataset name.
func KindFromName(name string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("simulate: unknown dataset %q", name)
}

// Generate produces the full-scale synthetic dataset for kind,
// deterministically from seed.
func Generate(kind Kind, seed int64) *dataset.Dataset {
	return GenerateScaled(kind, seed, 1)
}

// GenerateScaled produces a dataset whose task, worker and answer counts
// are scaled by the given factor (0 < scale ≤ 1); the worker population
// mixture and redundancy are preserved. Scaled-down datasets keep the
// qualitative method ranking and are used by the test suite and the
// testing.B benches to bound runtime. An out-of-range scale panics: a
// caller that asks for scale 0 or -3 has a bug, and silently substituting
// full scale would hide it behind a dataset ~10× larger than intended
// (the CLI front ends validate their -scale flags before reaching this).
func GenerateScaled(kind Kind, seed int64, scale float64) *dataset.Dataset {
	if !(scale > 0 && scale <= 1) {
		panic(fmt.Sprintf("simulate: scale %v out of range (0, 1]", scale))
	}
	rng := randx.New(seed ^ int64(kind)*0x5851F42D4C957F2D)
	switch kind {
	case DProduct:
		return genDProduct(rng, scale)
	case DPosSent:
		return genDPosSent(rng, scale)
	case SRel:
		return genSRel(rng, scale)
	case SAdult:
		return genSAdult(rng, scale)
	case NEmotion:
		return genNEmotion(rng, scale)
	default:
		panic("simulate: unknown kind")
	}
}

// All generates the five datasets at full scale.
func All(seed int64) []*dataset.Dataset {
	out := make([]*dataset.Dataset, len(Kinds))
	for i, k := range Kinds {
		out[i] = Generate(k, seed)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared machinery

// catWorker is a categorical worker: an ℓ×ℓ confusion matrix.
type catWorker struct {
	conf [][]float64
}

func (w catWorker) answer(rng *rand.Rand, truth int) int {
	return randx.Categorical(rng, w.conf[truth])
}

// numWorker is a numeric worker with a systematic bias and answer noise.
type numWorker struct {
	bias  float64
	sigma float64
}

// scaleCount scales an integer count, keeping at least lo.
func scaleCount(n int, scale float64, lo int) int {
	v := int(math.Round(float64(n) * scale))
	if v < lo {
		v = lo
	}
	return v
}

// assign distributes exactly numAnswers answers over numTasks tasks with
// per-task redundancy base or base+1 (matching the Table-5 |V|/n values),
// assigning distinct workers per task drawn from a bounded Zipf
// distribution — the long-tail worker redundancy of Figure 2.
func assign(rng *rand.Rand, numTasks, numWorkers, numAnswers int, zipfExp float64) [][]int {
	base := numAnswers / numTasks
	extra := numAnswers - base*numTasks
	perTask := make([]int, numTasks)
	for i := range perTask {
		perTask[i] = base
	}
	for _, i := range randx.SampleWithoutReplacement(rng, numTasks, extra) {
		perTask[i]++
	}
	z := randx.NewZipf(numWorkers, zipfExp)
	out := make([][]int, numTasks)
	seen := make(map[int]bool, 32)
	for i, r := range perTask {
		if r > numWorkers {
			r = numWorkers
		}
		ws := make([]int, 0, r)
		for k := range seen {
			delete(seen, k)
		}
		for len(ws) < r {
			w := z.Draw(rng)
			if seen[w] {
				continue
			}
			seen[w] = true
			ws = append(ws, w)
		}
		out[i] = ws
	}
	return out
}

// pickTruthSubset returns a random subset of task ids of size k (the
// truth-bearing subset of Table 5 for the large single-choice datasets).
func pickTruthSubset(rng *rand.Rand, numTasks, k int) []int {
	return randx.SampleWithoutReplacement(rng, numTasks, k)
}

// drawBetaConfusion builds an ℓ×ℓ confusion matrix whose diagonal entries
// are Beta(a,b) draws (per-class accuracy) with the off-diagonal residual
// split by offWeights (nil = uniform).
func drawBetaConfusion(rng *rand.Rand, ell int, diagA, diagB []float64, offWeights [][]float64) [][]float64 {
	conf := make([][]float64, ell)
	for j := 0; j < ell; j++ {
		row := make([]float64, ell)
		diag := randx.Beta(rng, diagA[j], diagB[j])
		row[j] = diag
		rem := 1 - diag
		var wsum float64
		for k := 0; k < ell; k++ {
			if k == j {
				continue
			}
			w := 1.0
			if offWeights != nil {
				w = offWeights[j][k]
			}
			wsum += w
		}
		for k := 0; k < ell; k++ {
			if k == j {
				continue
			}
			w := 1.0
			if offWeights != nil {
				w = offWeights[j][k]
			}
			row[k] = rem * w / wsum
		}
		conf[j] = row
	}
	return conf
}

// buildCategorical draws every answer and assembles the dataset. hardness,
// when non-nil, holds a per-task probability that an answer to the task is
// drawn uniformly at random instead of from the worker's confusion row —
// the "task difficulty" component that correlates errors across workers on
// ambiguous tasks (without it, 20 answers per task would make D_PosSent
// trivially solvable, unlike the paper's ≈96% ceiling).
func buildCategorical(rng *rand.Rand, name string, typ dataset.TaskType, ell int, truth []int, truthKnown []int, workers []catWorker, assignment [][]int, hardness []float64) *dataset.Dataset {
	answers := make([]dataset.Answer, 0, 1024)
	for i, ws := range assignment {
		for _, w := range ws {
			var label int
			if hardness != nil && rng.Float64() < hardness[i] {
				label = rng.Intn(ell)
			} else {
				label = workers[w].answer(rng, truth[i])
			}
			answers = append(answers, dataset.Answer{
				Task:   i,
				Worker: w,
				Value:  float64(label),
			})
		}
	}
	truthMap := make(map[int]float64, len(truthKnown))
	for _, t := range truthKnown {
		truthMap[t] = float64(truth[t])
	}
	d, err := dataset.New(name, typ, ell, len(truth), len(workers), answers, truthMap)
	if err != nil {
		panic("simulate: generated invalid dataset: " + err.Error())
	}
	return d
}

// hardTasks returns a per-task hardness vector: fraction hardFrac of the
// tasks are "ambiguous" with mix-to-uniform probability hardMix, the rest
// are easy (0).
func hardTasks(rng *rand.Rand, numTasks int, hardFrac, hardMix float64) []float64 {
	out := make([]float64, numTasks)
	k := int(hardFrac * float64(numTasks))
	for _, i := range randx.SampleWithoutReplacement(rng, numTasks, k) {
		out[i] = hardMix
	}
	return out
}

func allTasks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
