package closedloop

import (
	"fmt"
	"math/rand"

	"truthinference/internal/randx"
)

// This file is the attack half of the threat model (ROADMAP item 4):
// adversarial worker archetypes behind one serializable CrowdSpec, so an
// attack is exactly reproducible from a seed. The defense half lives in
// internal/assign (DefenseSpec); the closed loop pits the two against
// each other at a fixed budget.

// Worker classes, in worker-id order within a crowd.
const (
	classHonest = iota
	// classSpammer answers uniformly at random, ignoring the task.
	classSpammer
	// classColluder answers a shared wrong label derived from the crowd
	// seed and the task id — the whole clique agrees, and is always
	// wrong. This is the strongest correlated attack: under plain MV a
	// large enough clique simply outvotes the honest crowd.
	classColluder
	// classSleeper answers from an honest confusion row until it has
	// completed SleeperAfter answers, then degrades to SleeperAccuracy —
	// the build-reputation-then-burn-it attack.
	classSleeper
	// classCopycat replays the first answer already delivered on the
	// task, answering at chance when it arrives first. Copycats add no
	// information but inherit the apparent quality of whoever they copy,
	// and they correlate perfectly with each other.
	classCopycat
)

// CrowdSpec is the serializable composition of a simulated crowd: how
// many workers of each archetype, plus the archetype parameters. Worker
// ids are assigned deterministically in class order — honest first, then
// spammers, colluders, sleepers, copycats — so a (spec, seed) pair
// replays bit-identically.
type CrowdSpec struct {
	Honest    int `json:"honest"`
	Spammers  int `json:"spammers,omitempty"`
	Colluders int `json:"colluders,omitempty"`
	Sleepers  int `json:"sleepers,omitempty"`
	Copycats  int `json:"copycats,omitempty"`
	// SleeperAfter is the completed-answer count after which a sleeper
	// degrades (0 = DefaultSleeperAfter).
	SleeperAfter int `json:"sleeper_after,omitempty"`
	// SleeperAccuracy is the degraded accuracy (0 = chance, 1/ℓ).
	SleeperAccuracy float64 `json:"sleeper_accuracy,omitempty"`
}

// DefaultSleeperAfter is the default completed-answer count before a
// sleeper degrades.
const DefaultSleeperAfter = 10

// Total is the crowd size the spec describes.
func (c *CrowdSpec) Total() int {
	return c.Honest + c.Spammers + c.Colluders + c.Sleepers + c.Copycats
}

// Validate rejects impossible crowds fail-fast.
func (c *CrowdSpec) Validate() error {
	for _, n := range []int{c.Honest, c.Spammers, c.Colluders, c.Sleepers, c.Copycats} {
		if n < 0 {
			return fmt.Errorf("closedloop: negative archetype count in crowd %+v", *c)
		}
	}
	if c.Total() == 0 {
		return fmt.Errorf("closedloop: crowd spec has no workers")
	}
	if c.SleeperAfter < 0 {
		return fmt.Errorf("closedloop: negative sleeper_after %d", c.SleeperAfter)
	}
	if c.SleeperAccuracy < 0 || c.SleeperAccuracy > 1 {
		return fmt.Errorf("closedloop: sleeper accuracy %v outside [0,1]", c.SleeperAccuracy)
	}
	return nil
}

// simWorker is one simulated crowd member.
type simWorker struct {
	class     int
	conf      [][]float64 // honest/sleeper confusion rows (nil otherwise)
	asleep    [][]float64 // sleeper's degraded rows
	completed int         // delivered answers (sleeper trigger)
}

// simCrowd is the live crowd: the workers plus the shared state the
// correlated archetypes need (the per-task delivered-answer record the
// copycats replay, and the seed the colluders derive their shared label
// from).
type simCrowd struct {
	workers []simWorker
	spec    CrowdSpec
	choices int
	seed    int64
	first   map[int]int // task → first delivered label (copycat source)
}

// confusionRows builds the symmetric-accuracy confusion matrix the
// Table-5 generators use: acc on the diagonal, errors uniform over the
// other labels.
func confusionRows(acc float64, ell int) [][]float64 {
	conf := make([][]float64, ell)
	for z := 0; z < ell; z++ {
		row := make([]float64, ell)
		for k := range row {
			row[k] = (1 - acc) / float64(ell-1)
		}
		row[z] = acc
		conf[z] = row
	}
	return conf
}

// buildCrowd draws the crowd from rng in worker-id order. With a nil
// spec it reproduces the legacy all-honest pool (same draws, same
// order), so existing seeds replay identically.
func buildCrowd(spec *CrowdSpec, workers, choices int, seed int64, lo, hi float64, rng *rand.Rand) *simCrowd {
	s := CrowdSpec{Honest: workers}
	if spec != nil {
		s = *spec
	}
	if s.SleeperAfter == 0 {
		s.SleeperAfter = DefaultSleeperAfter
	}
	if s.SleeperAccuracy == 0 {
		s.SleeperAccuracy = 1 / float64(choices)
	}
	c := &simCrowd{spec: s, choices: choices, seed: seed, first: map[int]int{}}
	add := func(n, class int) {
		for i := 0; i < n; i++ {
			w := simWorker{class: class}
			switch class {
			case classHonest, classSleeper:
				acc := lo + rng.Float64()*(hi-lo)
				w.conf = confusionRows(acc, choices)
				if class == classSleeper {
					w.asleep = confusionRows(s.SleeperAccuracy, choices)
				}
			}
			c.workers = append(c.workers, w)
		}
	}
	add(s.Honest, classHonest)
	add(s.Spammers, classSpammer)
	add(s.Colluders, classColluder)
	add(s.Sleepers, classSleeper)
	add(s.Copycats, classCopycat)
	return c
}

// colludedLabel is the clique's shared wrong answer for a task: a label
// other than truth, derived deterministically from the crowd seed and
// the task id so every clique member agrees without communicating.
func (c *simCrowd) colludedLabel(task, truth int) int {
	off := 1 + int(randx.Mix(c.seed, int64(task), 0xC011)%uint64(c.choices-1))
	return (truth + off) % c.choices
}

// answer draws worker w's answer for a task with the given hidden truth.
func (c *simCrowd) answer(rng *rand.Rand, w, task, truth int) int {
	wk := &c.workers[w]
	switch wk.class {
	case classSpammer:
		return rng.Intn(c.choices)
	case classColluder:
		return c.colludedLabel(task, truth)
	case classSleeper:
		if wk.completed >= c.spec.SleeperAfter {
			return randx.Categorical(rng, wk.asleep[truth])
		}
		return randx.Categorical(rng, wk.conf[truth])
	case classCopycat:
		if label, ok := c.first[task]; ok {
			return label
		}
		return rng.Intn(c.choices)
	default:
		return randx.Categorical(rng, wk.conf[truth])
	}
}

// record notes one delivered answer: the copycats' replay source and the
// sleepers' completion counter advance only on delivery, matching what
// the platform actually received.
func (c *simCrowd) record(w, task, label int) {
	c.workers[w].completed++
	if _, ok := c.first[task]; !ok {
		c.first[task] = label
	}
}
