package closedloop

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/randx"
	"truthinference/internal/stream"
)

func TestCrowdSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec CrowdSpec
		ok   bool
	}{
		{"honest only", CrowdSpec{Honest: 10}, true},
		{"mixed", CrowdSpec{Honest: 10, Spammers: 2, Colluders: 3, Sleepers: 1, Copycats: 2, SleeperAfter: 5, SleeperAccuracy: 0.2}, true},
		{"all adversarial", CrowdSpec{Colluders: 4}, true},
		{"empty crowd", CrowdSpec{}, false},
		{"negative archetype", CrowdSpec{Honest: 5, Spammers: -1}, false},
		{"negative sleeper after", CrowdSpec{Honest: 5, SleeperAfter: -1}, false},
		{"sleeper accuracy above 1", CrowdSpec{Honest: 5, SleeperAccuracy: 1.5}, false},
		{"negative sleeper accuracy", CrowdSpec{Honest: 5, SleeperAccuracy: -0.5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.spec.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
			}
		})
	}
}

func TestCrowdSpecJSONRoundTrip(t *testing.T) {
	in := CrowdSpec{Honest: 24, Spammers: 8, Sleepers: 4, SleeperAfter: 8, SleeperAccuracy: 0.15}
	raw, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out CrowdSpec
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip %+v -> %s -> %+v", in, raw, out)
	}
	if out.Total() != 36 {
		t.Fatalf("Total() = %d, want 36", out.Total())
	}
}

func TestBuildCrowdAssignsIdsInClassOrder(t *testing.T) {
	rng := randx.New(7)
	spec := &CrowdSpec{Honest: 2, Spammers: 1, Colluders: 1, Sleepers: 1, Copycats: 1}
	c := buildCrowd(spec, 0, 4, 7, 0.6, 0.9, rng)
	want := []int{classHonest, classHonest, classSpammer, classColluder, classSleeper, classCopycat}
	for w, cls := range want {
		if c.workers[w].class != cls {
			t.Fatalf("worker %d class = %d, want %d", w, c.workers[w].class, cls)
		}
	}
	// Only honest workers and sleepers carry confusion rows; sleepers also
	// carry their degraded rows.
	for w, wk := range c.workers {
		wantConf := wk.class == classHonest || wk.class == classSleeper
		if (wk.conf != nil) != wantConf {
			t.Fatalf("worker %d (class %d) conf presence = %v", w, wk.class, wk.conf != nil)
		}
		if (wk.asleep != nil) != (wk.class == classSleeper) {
			t.Fatalf("worker %d (class %d) asleep presence = %v", w, wk.class, wk.asleep != nil)
		}
	}
}

func TestColludersShareAWrongLabel(t *testing.T) {
	rng := randx.New(3)
	c := buildCrowd(&CrowdSpec{Honest: 1, Colluders: 3}, 0, 4, 3, 0.6, 0.9, rng)
	for task := 0; task < 50; task++ {
		truth := task % 4
		first := c.answer(rng, 1, task, truth)
		if first == truth {
			t.Fatalf("task %d: colluded label %d equals truth", task, first)
		}
		if first < 0 || first >= 4 {
			t.Fatalf("task %d: colluded label %d outside alphabet", task, first)
		}
		// The whole clique agrees without communicating, and repeat draws
		// are stable: the label is a function of (seed, task) only.
		for _, w := range []int{1, 2, 3} {
			if got := c.answer(rng, w, task, truth); got != first {
				t.Fatalf("task %d: clique member %d answered %d, not shared label %d", task, w, got, first)
			}
		}
	}
}

func TestSleeperDegradesAfterThreshold(t *testing.T) {
	// Accuracy bounds pinned to 1.0 make the honest phase deterministic:
	// a sleeper answers truth until SleeperAfter deliveries, then falls to
	// SleeperAccuracy.
	rng := randx.New(5)
	spec := &CrowdSpec{Honest: 1, Sleepers: 1, SleeperAfter: 3, SleeperAccuracy: 0.5}
	c := buildCrowd(spec, 0, 2, 5, 1.0, 1.0, rng)
	const sleeper = 1
	for i := 0; i < 3; i++ {
		if got := c.answer(rng, sleeper, i, 1); got != 1 {
			t.Fatalf("answer %d: sleeper answered %d during its honest phase", i, got)
		}
		c.record(sleeper, i, 1)
	}
	wrong := 0
	for i := 0; i < 200; i++ {
		if c.answer(rng, sleeper, 100+i, 1) != 1 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("sleeper never degraded after its trigger")
	}
}

func TestCopycatReplaysFirstDeliveredAnswer(t *testing.T) {
	rng := randx.New(9)
	c := buildCrowd(&CrowdSpec{Honest: 1, Copycats: 2}, 0, 4, 9, 0.6, 0.9, rng)
	c.record(0, 7, 2) // the honest worker delivers label 2 on task 7 first
	for i := 0; i < 20; i++ {
		for _, w := range []int{1, 2} {
			if got := c.answer(rng, w, 7, 0); got != 2 {
				t.Fatalf("copycat %d answered %d, want replayed label 2", w, got)
			}
		}
	}
	// On a task with no delivered answer yet, a copycat answers at chance
	// within the alphabet.
	if got := c.answer(rng, 1, 8, 0); got < 0 || got >= 4 {
		t.Fatalf("copycat first-mover answer %d outside alphabet", got)
	}
}

// TestGoldenTasksMustLeaveScoredTasks is the regression test for the NaN
// accuracy bug: an all-golden board scored 0 of 0 tasks and returned
// accuracy NaN, which silently passes (NaN > x is false) in comparisons.
func TestGoldenTasksMustLeaveScoredTasks(t *testing.T) {
	base := LoopConfig{Tasks: 4, Workers: 3, Choices: 2, Seed: 1, Budget: 12}
	for _, golden := range []int{4, 5, -1} {
		cfg := base
		cfg.GoldenTasks = golden
		if _, err := ClosedLoop(cfg, "random"); err == nil {
			t.Fatalf("GoldenTasks=%d on a 4-task board accepted", golden)
		}
	}
	cfg := base
	cfg.GoldenTasks = 3 // one scored task left: legal
	res, err := ClosedLoop(cfg, "random")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Accuracy) {
		t.Fatal("accuracy is NaN on a legal golden board")
	}
}

// TestAccuracyBoundsValidation is the regression test for silently
// accepted accuracy bounds: below-chance, above-1 or inverted bounds
// produced confusion rows with negative error mass.
func TestAccuracyBoundsValidation(t *testing.T) {
	base := LoopConfig{Tasks: 4, Workers: 3, Choices: 4, Seed: 1, Budget: 12}
	cases := []struct {
		name   string
		lo, hi float64
		ok     bool
	}{
		{"defaults", 0, 0, true},
		{"valid range", 0.3, 0.9, true},
		{"degenerate point", 0.5, 0.5, true},
		{"inverted", 0.9, 0.6, false},
		{"below chance", 0.1, 0.9, false},
		{"above one", 0.5, 1.2, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			cfg.AccuracyLo, cfg.AccuracyHi = c.lo, c.hi
			_, err := ClosedLoop(cfg, "random")
			if (err == nil) != c.ok {
				t.Fatalf("bounds [%v,%v]: err = %v, want ok=%v", c.lo, c.hi, err, c.ok)
			}
		})
	}
}

func TestStandardAttacksShape(t *testing.T) {
	attacks := StandardAttacks(24, 8)
	want := []string{"collusion", "spammer", "sleeper", "copy-paste"}
	if len(attacks) != len(want) {
		t.Fatalf("got %d attacks, want %d", len(attacks), len(want))
	}
	for i, a := range attacks {
		if a.Name != want[i] {
			t.Fatalf("attack %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Crowd.Honest != 24 || a.Crowd.Total() != 32 {
			t.Fatalf("attack %q crowd %+v, want 24 honest of 32", a.Name, a.Crowd)
		}
		if err := a.Crowd.Validate(); err != nil {
			t.Fatalf("attack %q crowd invalid: %v", a.Name, err)
		}
	}
}

func TestAttackMatrixShape(t *testing.T) {
	base := LoopConfig{Tasks: 12, Choices: 2, Seed: 2, Budget: 48, Redundancy: 4}
	attacks := StandardAttacks(6, 2)[:2]
	rows, err := AttackMatrix(base, "least-answered", []core.Method{nil}, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 1 {
		t.Fatalf("matrix shape %dx%d, want 2x1", len(rows), len(rows[0]))
	}
	for i, row := range rows {
		if math.IsNaN(row[0].Accuracy) || row[0].Collected == 0 {
			t.Fatalf("attack %q result %+v is degenerate", attacks[i].Name, row[0])
		}
	}
}

// TestDefenseStateRebuildsAcrossServiceRestart drives the golden gate
// against a real stream.Service, then rebuilds a fresh ledger over the
// same service — modeling a daemon restart, where defense state must be
// replayed from the store's recorded truth and answers.
func TestDefenseStateRebuildsAcrossServiceRestart(t *testing.T) {
	store, err := stream.NewStore("restart", dataset.Decision, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := stream.NewService(store, stream.Config{Method: direct.NewMV()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Ingest(stream.Batch{
		NumTasks: 6, NumWorkers: 8,
		Truth: map[int]float64{0: 1, 1: 0},
	}); err != nil {
		t.Fatal(err)
	}

	spec := &assign.DefenseSpec{GoldenPass: 1, GoldenFails: 2}
	now := time.Unix(1_000_000, 0)
	mkLedger := func() *assign.Ledger {
		l, err := assign.NewLedger(svc, assign.Config{
			Policy:  assign.LeastAnswered{},
			Budget:  100,
			Seed:    1,
			Now:     func() time.Time { return now },
			Defense: spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	deliver := func(worker int, label float64) func(int) error {
		return func(task int) error {
			_, err := svc.Ingest(stream.Batch{Answers: []dataset.Answer{
				{Task: task, Worker: worker, Value: label},
			}})
			return err
		}
	}

	l1 := mkLedger()
	truth := map[int]float64{0: 1, 1: 0}
	// Worker 2 qualifies; worker 5 fails out of the gate.
	lease, err := l1.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.CompleteValue(lease.ID, 2, truth[lease.Task], deliver(2, truth[lease.Task])); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		lease, err = l1.Assign(5)
		if err != nil {
			t.Fatal(err)
		}
		wrong := 1 - truth[lease.Task]
		if err := l1.CompleteValue(lease.ID, 5, wrong, deliver(5, wrong)); err != nil {
			t.Fatal(err)
		}
	}

	// "Restart": a fresh ledger over the same service.
	l2 := mkLedger()
	state := map[int]assign.Suspect{}
	for _, s := range l2.Suspects() {
		state[s.Worker] = s
	}
	if !state[2].Qualified || state[2].Banned {
		t.Fatalf("restart lost worker 2's qualification: %+v", state[2])
	}
	if !state[5].Banned || state[5].BanReason != "golden" {
		t.Fatalf("restart lost worker 5's ban: %+v", state[5])
	}
	lease, err = l2.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Golden {
		t.Fatalf("rebuilt ledger re-gated the qualified worker: %+v", lease)
	}
}
