package closedloop

import (
	"math"
	"testing"

	"truthinference/internal/assign"
	"truthinference/internal/methods/ds"
)

// attackCase is one archetype's scenario: a crowd mounting the attack
// and the defense tuned to counter it. The undefended run is the same
// config with Defense stripped.
type attackCase struct {
	name    string
	cfg     LoopConfig
	defense *assign.DefenseSpec
}

// attackCases are the four canonical attacks of the threat model, each
// against the defense that counters it: golden gates stop always-wrong
// colluders at the door; the quality floor catches spammers as soon as
// D&S estimates them; change-detection catches sleepers when their
// estimate collapses; correlation scoring catches copy-paste rings.
func attackCases() []attackCase {
	// A colluding clique outvoting honest MV on a binary board; the
	// golden gate bans always-wrong workers at the door.
	collusion := LoopConfig{
		Tasks: 300, Choices: 2, Seed: 11, Budget: 900, Redundancy: 9,
		GoldenTasks: 12, AccuracyLo: 0.62, AccuracyHi: 0.85,
		Crowd: &CrowdSpec{Honest: 24, Colluders: 8},
	}
	// Uniform spammers on a dense 4-choice board served by D&S (9
	// answers per task keeps the posterior sharp enough for per-worker
	// estimates to mean something): defense in depth — most spammers
	// fail the golden gate at the door (they answer golden tasks at
	// chance), and the quality floor catches the ones that luck through,
	// whose estimated diagonal settles near chance (0.25).
	spammer := LoopConfig{
		Tasks: 100, Choices: 4, Seed: 11, Budget: 900, Redundancy: 9,
		GoldenTasks: 8, AccuracyLo: 0.65, AccuracyHi: 0.85,
		Crowd: &CrowdSpec{Honest: 24, Spammers: 8},
	}
	spammer.Method = ds.New()
	spammer.RefreshEvery = 40
	// Sleepers that turn actively malicious after 8 answers. A golden
	// gate cannot stop them — they are honest when they qualify, which
	// is the archetype's whole point — so this case rides on the
	// change-detector alone: the estimated quality collapses mid-stream
	// and the sustained drop fires.
	sleeper := spammer
	sleeper.Crowd = &CrowdSpec{Honest: 24, Sleepers: 8, SleeperAfter: 8, SleeperAccuracy: 0.15}
	// A copy-paste ring on a small dense board (9 answers per task, so
	// pairs actually co-answer enough tasks to correlate): the parrots
	// amplify whatever answer lands first, capturing MV's consensus —
	// only the identical-stream rule catches them.
	copycat := LoopConfig{
		Tasks: 100, Choices: 4, Seed: 11, Budget: 900, Redundancy: 9,
		GoldenTasks: 8, AccuracyLo: 0.62, AccuracyHi: 0.85,
		Crowd: &CrowdSpec{Honest: 24, Copycats: 8},
	}

	return []attackCase{
		{"collusion", collusion, &assign.DefenseSpec{GoldenPass: 2, GoldenFails: 3}},
		{"spammer", spammer, &assign.DefenseSpec{GoldenPass: 2, GoldenFails: 3, MinQuality: 0.28, QualityMinAnswers: 12}},
		{"sleeper", sleeper, &assign.DefenseSpec{QualityDrop: 0.3, QualityMinAnswers: 12}},
		{"copy-paste", copycat, &assign.DefenseSpec{CollusionThreshold: 0.35, CollusionMinOverlap: 6}},
	}
}

// actioned splits the actioned workers into honest casualties and caught
// adversaries, using the deterministic class order of CrowdSpec (honest
// workers take the low ids).
func actioned(r LoopResult, honest int) (casualties, caught int) {
	for _, s := range r.Suspects {
		if !s.Banned && !s.DownWeighted {
			continue
		}
		if s.Worker < honest {
			casualties++
		} else {
			caught++
		}
	}
	return casualties, caught
}

// TestDefendedBeatsUndefendedUnderEachAttack is the ISSUE-10 acceptance
// gate: for every attack archetype, at the same seed and the same
// budget, the defended pipeline must reach strictly higher accuracy
// than the undefended one. Everything is seeded (crowd, clock, policy
// hashing), so these are hard inequalities, not statistical assertions.
func TestDefendedBeatsUndefendedUnderEachAttack(t *testing.T) {
	for _, tc := range attackCases() {
		t.Run(tc.name, func(t *testing.T) {
			undef, err := ClosedLoop(tc.cfg, "uncertainty")
			if err != nil {
				t.Fatal(err)
			}
			defended := tc.cfg
			defended.Defense = tc.defense
			def, err := ClosedLoop(defended, "uncertainty")
			if err != nil {
				t.Fatal(err)
			}
			casualties, caught := actioned(def, tc.cfg.Crowd.Honest)
			adversaries := tc.cfg.Crowd.Total() - tc.cfg.Crowd.Honest
			t.Logf("%-10s undefended=%.4f defended=%.4f caught=%d/%d honest casualties=%d/%d",
				tc.name, undef.Accuracy, def.Accuracy, caught, adversaries, casualties, tc.cfg.Crowd.Honest)
			if math.IsNaN(undef.Accuracy) || math.IsNaN(def.Accuracy) {
				t.Fatalf("NaN accuracy (undefended %v, defended %v)", undef.Accuracy, def.Accuracy)
			}
			if def.Accuracy <= undef.Accuracy {
				t.Fatalf("defended accuracy %.4f not strictly above undefended %.4f under %s attack",
					def.Accuracy, undef.Accuracy, tc.name)
			}
			// The defense must actually catch the ring, not just shrink the
			// crowd: most adversaries actioned, fewer honest casualties
			// than adversaries caught.
			if caught*2 < adversaries {
				t.Fatalf("defense caught only %d of %d adversaries", caught, adversaries)
			}
			if casualties >= caught {
				t.Fatalf("defense hit %d honest workers while catching %d adversaries", casualties, caught)
			}
			if undef.Banned != 0 || undef.DownWeighted != 0 {
				t.Fatalf("undefended run actioned workers: %+v", undef)
			}
		})
	}
}
