package closedloop

import (
	"fmt"
	"testing"

	"truthinference/internal/methods/ds"
)

// loopCfg is the shared closed-loop configuration of the policy
// comparison tests: a noisy crowd over a 2-choice board with a budget of
// ~3 answers per task — tight enough that where they land matters.
func loopCfg() LoopConfig {
	return LoopConfig{
		Tasks:      300,
		Workers:    40,
		Choices:    2,
		Seed:       5,
		Budget:     900,
		Redundancy: 9,
	}
}

// TestUncertaintyBeatsRandomAtFixedBudget is the ISSUE-4 acceptance
// gate: with the same hidden crowd, the same seed and the same answer
// budget, uncertainty routing must reach strictly higher accuracy than
// random assignment. The run is fully deterministic (seeded rng, fake
// clock, MV's exact incremental posterior), so this is a hard inequality,
// not a flaky statistical assertion.
func TestUncertaintyBeatsRandomAtFixedBudget(t *testing.T) {
	results, err := ComparePolicies(loopCfg(), []string{"random", "least-answered", "uncertainty"})
	if err != nil {
		t.Fatal(err)
	}
	random, least, uncertainty := results[0], results[1], results[2]
	for _, r := range results {
		t.Logf("%v", r)
	}
	if uncertainty.Accuracy <= random.Accuracy {
		t.Fatalf("uncertainty accuracy %.4f not strictly above random %.4f at budget %d",
			uncertainty.Accuracy, random.Accuracy, loopCfg().Budget)
	}
	if uncertainty.Accuracy <= least.Accuracy {
		t.Fatalf("uncertainty accuracy %.4f not strictly above least-answered %.4f at budget %d",
			uncertainty.Accuracy, least.Accuracy, loopCfg().Budget)
	}
	// Both spent the same budget — the comparison is fair.
	if random.Collected != uncertainty.Collected {
		t.Fatalf("unequal spend: random collected %d, uncertainty %d", random.Collected, uncertainty.Collected)
	}
	if got, want := int(random.Collected), loopCfg().Budget; got != want {
		t.Fatalf("collected %d answers, want the full budget %d", got, want)
	}
}

// TestClosedLoopDeterministic pins replayability: the whole loop —
// crowd, routing, inference — is a pure function of the config.
func TestClosedLoopDeterministic(t *testing.T) {
	a, err := ClosedLoop(loopCfg(), "uncertainty")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClosedLoop(loopCfg(), "uncertainty")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("closed loop diverged:\n%v\n%v", a, b)
	}
}

// TestClosedLoopLeaseReclaim drives the loop with abandoning workers:
// leases must expire, flow back, and the budget must still be spent in
// full by the workers who stayed.
func TestClosedLoopLeaseReclaim(t *testing.T) {
	cfg := loopCfg()
	cfg.AbandonProb = 0.2
	res, err := ClosedLoop(cfg, "least-answered")
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired == 0 {
		t.Fatal("no lease expired despite 20% abandonment — reclaim path not exercised")
	}
	if int(res.Collected) != cfg.Budget {
		t.Fatalf("collected %d answers, want the full budget %d despite abandonment", res.Collected, cfg.Budget)
	}
	if res.Issued != res.Collected+res.Expired {
		t.Fatalf("lease accounting does not balance: %+v", res)
	}
}

// TestClosedLoopIterativeMethod smoke-tests the loop against a real
// warm-started EM method (D&S) with periodic refresh epochs: the
// posterior steering the assignments now comes from actual inference,
// and the loop must still beat coin-flipping.
func TestClosedLoopIterativeMethod(t *testing.T) {
	cfg := LoopConfig{
		Tasks: 80, Workers: 20, Choices: 2, Seed: 5,
		Budget: 320, Redundancy: 8,
		Method:       ds.New(),
		RefreshEvery: 40,
		GoldenTasks:  8, // anchor D&S's label symmetry
	}
	res, err := ClosedLoop(cfg, "uncertainty")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.6 {
		t.Fatalf("D&S closed loop accuracy %.4f, want > 0.6", res.Accuracy)
	}
}

// TestAccuracyVsBudgetMonotoneForUncertainty checks the experiment
// harness end to end: more budget never hurts uncertainty routing on
// this seeded crowd, and the sweep returns budget-major rows.
func TestAccuracyVsBudget(t *testing.T) {
	cfg := loopCfg()
	cfg.Tasks, cfg.Workers = 100, 20
	budgets := []int{100, 300, 500}
	rows, err := AccuracyVsBudget(cfg, []string{"random", "uncertainty"}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(budgets) || len(rows[0]) != 2 {
		t.Fatalf("sweep shape %dx%d, want %dx2", len(rows), len(rows[0]), len(budgets))
	}
	for i, row := range rows {
		if row[0].Budget != budgets[i] {
			t.Errorf("row %d carries budget %d, want %d", i, row[0].Budget, budgets[i])
		}
		t.Logf("budget %d: random %.4f, uncertainty %.4f", budgets[i], row[0].Accuracy, row[1].Accuracy)
	}
	first := rows[0][1].Accuracy
	last := rows[len(rows)-1][1].Accuracy
	if last < first {
		t.Errorf("uncertainty accuracy fell from %.4f to %.4f as budget grew 5x", first, last)
	}
}
