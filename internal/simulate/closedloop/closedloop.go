// Package closedloop is the closed-loop assignment driver: a simulated worker
// pool (per-worker confusion matrices, like the Table-5 generators)
// repeatedly asks an assign.Ledger which task to answer next, answers it
// from its confusion row, and feeds the answer back into a live
// stream.Service — whose refreshed posterior then steers the next
// assignment. It is the end-to-end harness the policy comparison runs
// on: same crowd, same seed, same budget, different policy, different
// final accuracy. It lives one level under internal/simulate (which
// generates the paper's static benchmark datasets) because the driver
// sits on top of the serving stack — stream + assign — that the static
// generators feed.
package closedloop

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/randx"
	"truthinference/internal/stream"
)

// confusionWorker is one simulated crowd member: an ℓ×ℓ confusion matrix
// (row = true label, column = answered label), the same worker model the
// Table-5 dataset generators use.
type confusionWorker struct {
	conf [][]float64
}

func (w confusionWorker) answer(rng *rand.Rand, truth int) int {
	return randx.Categorical(rng, w.conf[truth])
}

// LoopConfig parameterizes one closed-loop simulation.
type LoopConfig struct {
	// Tasks and Workers size the simulated crowd; Choices is ℓ (2 runs a
	// decision store, >2 single-choice).
	Tasks, Workers, Choices int
	// Seed drives every random draw (ground truth, worker confusions,
	// answer noise, request order) — equal configs replay bit-identically.
	Seed int64
	// Budget is the total answers the ledger may route (required).
	Budget int
	// Redundancy caps answers per task (0 = assign.DefaultRedundancy).
	Redundancy int
	// Method serves truth inference inside the loop; nil = MV (exact
	// incremental posterior, always fresh).
	Method core.Method
	// RefreshEvery runs an inference epoch every N completed answers
	// (iterative methods only; incremental methods are always fresh).
	// 0 refreshes only once at the end.
	RefreshEvery int
	// AbandonProb is the per-assignment probability that the worker
	// walks away without answering, exercising lease expiry/reclaim.
	AbandonProb float64
	// AccuracyLo/Hi bound the uniform per-worker accuracy draw
	// (defaults 0.55..0.8 — a noisy crowd where routing matters).
	AccuracyLo, AccuracyHi float64
	// GoldenTasks anchors the first N tasks: their ground truth is given
	// to the method as golden tasks (platforms do this to anchor
	// label-symmetric methods like D&S, whose EM can otherwise converge
	// to the permuted labeling on sparse early epochs). Golden tasks are
	// excluded from the reported accuracy.
	GoldenTasks int
}

// LoopResult summarizes one closed-loop run.
type LoopResult struct {
	Policy   string
	Budget   int
	Accuracy float64 // fraction of tasks whose final truth matches ground truth
	// Collected/Issued/Expired are the ledger's final lease accounting.
	Collected uint64
	Issued    uint64
	Expired   uint64
	Rounds    int
}

func (r LoopResult) String() string {
	return fmt.Sprintf("%-14s budget=%-5d accuracy=%.4f collected=%d expired=%d",
		r.Policy, r.Budget, r.Accuracy, r.Collected, r.Expired)
}

// ClosedLoop runs one full simulation with the named assignment policy
// and returns the final accuracy against the hidden ground truth.
func ClosedLoop(cfg LoopConfig, policyName string) (LoopResult, error) {
	policy, err := assign.ParsePolicy(policyName)
	if err != nil {
		return LoopResult{}, err
	}
	if cfg.Tasks <= 0 || cfg.Workers <= 0 || cfg.Choices < 2 {
		return LoopResult{}, fmt.Errorf("closedloop: closed loop needs tasks, workers and ≥2 choices (got %d/%d/%d)",
			cfg.Tasks, cfg.Workers, cfg.Choices)
	}
	if cfg.Budget <= 0 {
		return LoopResult{}, errors.New("closedloop: closed loop needs a positive answer budget")
	}
	lo, hi := cfg.AccuracyLo, cfg.AccuracyHi
	if lo == 0 && hi == 0 {
		lo, hi = 0.55, 0.8
	}
	method := cfg.Method
	if method == nil {
		method = direct.NewMV()
	}

	// The hidden world: ground truth and the worker pool's confusion
	// matrices (symmetric accuracy, errors uniform over other labels).
	rng := randx.New(cfg.Seed)
	truth := make([]int, cfg.Tasks)
	for i := range truth {
		truth[i] = rng.Intn(cfg.Choices)
	}
	crowd := make([]confusionWorker, cfg.Workers)
	for w := range crowd {
		acc := lo + rng.Float64()*(hi-lo)
		conf := make([][]float64, cfg.Choices)
		for z := 0; z < cfg.Choices; z++ {
			row := make([]float64, cfg.Choices)
			for k := range row {
				row[k] = (1 - acc) / float64(cfg.Choices-1)
			}
			row[z] = acc
			conf[z] = row
		}
		crowd[w] = confusionWorker{conf: conf}
	}

	typ := dataset.SingleChoice
	if cfg.Choices == 2 {
		typ = dataset.Decision
	}
	store, err := stream.NewStore("closedloop", typ, cfg.Choices)
	if err != nil {
		return LoopResult{}, err
	}
	opts := core.Options{Seed: cfg.Seed}
	if cfg.GoldenTasks > cfg.Tasks {
		cfg.GoldenTasks = cfg.Tasks
	}
	if cfg.GoldenTasks > 0 {
		opts.Golden = make(map[int]float64, cfg.GoldenTasks)
		for i := 0; i < cfg.GoldenTasks; i++ {
			opts.Golden[i] = float64(truth[i])
		}
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:  method,
		Options: opts,
	})
	if err != nil {
		return LoopResult{}, err
	}
	defer svc.Close()
	// Post the task board and worker roster up front, as a platform does.
	if _, err := svc.Ingest(stream.Batch{NumTasks: cfg.Tasks, NumWorkers: cfg.Workers}); err != nil {
		return LoopResult{}, err
	}

	// A fake clock keeps lease expiry deterministic: one second per
	// assignment request, 30-second TTL — an abandoned lease is reclaimed
	// roughly one round of the whole crowd later.
	now := time.Unix(1_000_000, 0)
	ledger, err := assign.NewLedger(svc, assign.Config{
		Policy:     policy,
		Redundancy: cfg.Redundancy,
		Budget:     cfg.Budget,
		LeaseTTL:   30 * time.Second,
		Seed:       cfg.Seed,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		return LoopResult{}, err
	}

	res := LoopResult{Policy: policyName, Budget: cfg.Budget}
	completedSinceRefresh := 0
	order := make([]int, cfg.Workers)
	for i := range order {
		order[i] = i
	}
	for rounds := 0; rounds < 100000; rounds++ {
		res.Rounds = rounds + 1
		randx.Shuffle(rng, order)
		progress := false
		for _, w := range order {
			now = now.Add(time.Second)
			lease, err := ledger.Assign(w)
			switch {
			case errors.Is(err, assign.ErrNoTask), errors.Is(err, assign.ErrBudgetExhausted):
				continue
			case err != nil:
				return LoopResult{}, err
			}
			progress = true
			if cfg.AbandonProb > 0 && rng.Float64() < cfg.AbandonProb {
				continue // walks away; the lease expires and is reclaimed
			}
			label := crowd[w].answer(rng, truth[lease.Task])
			err = ledger.Complete(lease.ID, w, func(task int) error {
				_, ierr := svc.Ingest(stream.Batch{Answers: []dataset.Answer{
					{Task: task, Worker: w, Value: float64(label)},
				}})
				return ierr
			})
			if err != nil {
				return LoopResult{}, fmt.Errorf("closedloop: complete lease %d: %w", lease.ID, err)
			}
			completedSinceRefresh++
			if cfg.RefreshEvery > 0 && completedSinceRefresh >= cfg.RefreshEvery {
				if err := svc.Refresh(); err != nil {
					return LoopResult{}, err
				}
				completedSinceRefresh = 0
			}
		}
		if !progress && ledger.Stats().Outstanding == 0 {
			break // budget spent or board drained, nothing left to reclaim
		}
	}
	if err := svc.Refresh(); err != nil {
		return LoopResult{}, err
	}

	truths, _, err := svc.Truths()
	if err != nil {
		return LoopResult{}, err
	}
	correct, scored := 0, 0
	for i := cfg.GoldenTasks; i < cfg.Tasks; i++ {
		scored++
		if int(truths[i]) == truth[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(scored)
	st := ledger.Stats()
	res.Collected, res.Issued, res.Expired = st.Completed, st.Issued, st.Expired
	return res, nil
}

// ComparePolicies runs the identical closed loop (same seed, same
// hidden crowd) once per policy and returns the results in input order —
// the accuracy-at-fixed-budget comparison of the paper's assignment
// discussion.
func ComparePolicies(cfg LoopConfig, policyNames []string) ([]LoopResult, error) {
	out := make([]LoopResult, 0, len(policyNames))
	for _, name := range policyNames {
		r, err := ClosedLoop(cfg, name)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AccuracyVsBudget sweeps the closed loop over answer budgets for each
// policy (budget-major result order): the quality-per-dollar curve that
// shows where uncertainty routing pulls ahead of random at equal spend.
func AccuracyVsBudget(cfg LoopConfig, policyNames []string, budgets []int) ([][]LoopResult, error) {
	out := make([][]LoopResult, 0, len(budgets))
	for _, b := range budgets {
		c := cfg
		c.Budget = b
		row, err := ComparePolicies(c, policyNames)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
