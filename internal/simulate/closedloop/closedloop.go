// Package closedloop is the closed-loop assignment driver: a simulated worker
// pool (per-worker confusion matrices, like the Table-5 generators)
// repeatedly asks an assign.Ledger which task to answer next, answers it
// from its confusion row, and feeds the answer back into a live
// stream.Service — whose refreshed posterior then steers the next
// assignment. It is the end-to-end harness the policy comparison runs
// on: same crowd, same seed, same budget, different policy, different
// final accuracy. It lives one level under internal/simulate (which
// generates the paper's static benchmark datasets) because the driver
// sits on top of the serving stack — stream + assign — that the static
// generators feed.
package closedloop

import (
	"errors"
	"fmt"
	"time"

	"truthinference/internal/assign"
	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/randx"
	"truthinference/internal/stream"
)

// LoopConfig parameterizes one closed-loop simulation.
type LoopConfig struct {
	// Tasks and Workers size the simulated crowd; Choices is ℓ (2 runs a
	// decision store, >2 single-choice).
	Tasks, Workers, Choices int
	// Seed drives every random draw (ground truth, worker confusions,
	// answer noise, request order) — equal configs replay bit-identically.
	Seed int64
	// Budget is the total answers the ledger may route (required).
	Budget int
	// Redundancy caps answers per task (0 = assign.DefaultRedundancy).
	Redundancy int
	// Method serves truth inference inside the loop; nil = MV (exact
	// incremental posterior, always fresh).
	Method core.Method
	// RefreshEvery runs an inference epoch every N completed answers
	// (iterative methods only; incremental methods are always fresh).
	// 0 refreshes only once at the end.
	RefreshEvery int
	// AbandonProb is the per-assignment probability that the worker
	// walks away without answering, exercising lease expiry/reclaim.
	AbandonProb float64
	// AccuracyLo/Hi bound the uniform per-worker accuracy draw
	// (defaults 0.55..0.8 — a noisy crowd where routing matters).
	AccuracyLo, AccuracyHi float64
	// GoldenTasks anchors the first N tasks: their ground truth is given
	// to the method as golden tasks (platforms do this to anchor
	// label-symmetric methods like D&S, whose EM can otherwise converge
	// to the permuted labeling on sparse early epochs), and is recorded
	// in the store so the ledger's golden qualification gate can grade
	// against it. Golden tasks are excluded from the reported accuracy;
	// GoldenTasks >= Tasks is rejected (nothing would be scored). Must
	// be > 0 when Defense.GoldenPass is set.
	GoldenTasks int
	// Crowd, when non-nil, replaces the all-honest pool of Workers with
	// a mixed honest/adversarial crowd (see CrowdSpec); Workers is then
	// ignored in favor of Crowd.Total().
	Crowd *CrowdSpec
	// Defense, when non-nil and enabled, arms the ledger's defense
	// layer against the crowd (see assign.DefenseSpec).
	Defense *assign.DefenseSpec
}

// LoopResult summarizes one closed-loop run.
type LoopResult struct {
	Policy   string
	Budget   int
	Accuracy float64 // fraction of tasks whose final truth matches ground truth
	// Collected/Issued/Expired are the ledger's final lease accounting.
	Collected uint64
	Issued    uint64
	Expired   uint64
	Rounds    int
	// Banned/DownWeighted count workers the defense layer actioned
	// (0 when no defense is configured).
	Banned       int
	DownWeighted int
	// Suspects is the final per-worker defense dossier (nil when no
	// defense is configured) — who was actioned, and why.
	Suspects []assign.Suspect
}

func (r LoopResult) String() string {
	return fmt.Sprintf("%-14s budget=%-5d accuracy=%.4f collected=%d expired=%d",
		r.Policy, r.Budget, r.Accuracy, r.Collected, r.Expired)
}

// ClosedLoop runs one full simulation with the named assignment policy
// and returns the final accuracy against the hidden ground truth.
func ClosedLoop(cfg LoopConfig, policyName string) (LoopResult, error) {
	policy, err := assign.ParsePolicy(policyName)
	if err != nil {
		return LoopResult{}, err
	}
	workers := cfg.Workers
	if cfg.Crowd != nil {
		if err := cfg.Crowd.Validate(); err != nil {
			return LoopResult{}, err
		}
		workers = cfg.Crowd.Total()
	}
	if cfg.Tasks <= 0 || workers <= 0 || cfg.Choices < 2 {
		return LoopResult{}, fmt.Errorf("closedloop: closed loop needs tasks, workers and ≥2 choices (got %d/%d/%d)",
			cfg.Tasks, workers, cfg.Choices)
	}
	if cfg.Budget <= 0 {
		return LoopResult{}, errors.New("closedloop: closed loop needs a positive answer budget")
	}
	if cfg.GoldenTasks < 0 || cfg.GoldenTasks >= cfg.Tasks {
		// Golden tasks are excluded from the reported accuracy, so an
		// all-golden board would score 0 of 0 tasks — a NaN accuracy.
		// Reject fail-fast instead of letting the NaN propagate into
		// comparisons (NaN > x is false, silently passing gates).
		return LoopResult{}, fmt.Errorf("closedloop: %d golden tasks leave no scored task on a %d-task board",
			cfg.GoldenTasks, cfg.Tasks)
	}
	lo, hi := cfg.AccuracyLo, cfg.AccuracyHi
	if lo == 0 && hi == 0 {
		lo, hi = 0.55, 0.8
	}
	// An accuracy below chance (1/ℓ) or above 1 would put negative
	// error mass on the confusion rows' off-diagonals; inverted bounds
	// would silently flip the draw. Fail fast, like GenerateScaled does
	// for bad scales.
	if chance := 1 / float64(cfg.Choices); lo > hi || lo < chance || hi > 1 {
		return LoopResult{}, fmt.Errorf("closedloop: accuracy bounds [%v,%v] invalid — need 1/ℓ=%v <= lo <= hi <= 1",
			lo, hi, chance)
	}
	method := cfg.Method
	if method == nil {
		method = direct.NewMV()
	}

	// The hidden world: ground truth and the crowd (confusion-matrix
	// honest workers plus any adversarial archetypes — see CrowdSpec).
	rng := randx.New(cfg.Seed)
	truth := make([]int, cfg.Tasks)
	for i := range truth {
		truth[i] = rng.Intn(cfg.Choices)
	}
	crowd := buildCrowd(cfg.Crowd, workers, cfg.Choices, cfg.Seed, lo, hi, rng)

	typ := dataset.SingleChoice
	if cfg.Choices == 2 {
		typ = dataset.Decision
	}
	store, err := stream.NewStore("closedloop", typ, cfg.Choices)
	if err != nil {
		return LoopResult{}, err
	}
	opts := core.Options{Seed: cfg.Seed}
	board := stream.Batch{NumTasks: cfg.Tasks, NumWorkers: workers}
	if cfg.GoldenTasks > 0 {
		opts.Golden = make(map[int]float64, cfg.GoldenTasks)
		board.Truth = make(map[int]float64, cfg.GoldenTasks)
		for i := 0; i < cfg.GoldenTasks; i++ {
			opts.Golden[i] = float64(truth[i])
			// Recording the truth in the store is what lets the ledger's
			// qualification gate grade answers on these tasks.
			board.Truth[i] = float64(truth[i])
		}
	}
	svc, err := stream.NewService(store, stream.Config{
		Method:  method,
		Options: opts,
	})
	if err != nil {
		return LoopResult{}, err
	}
	defer svc.Close()
	// Post the task board, worker roster and golden truth up front, as a
	// platform does.
	if _, err := svc.Ingest(board); err != nil {
		return LoopResult{}, err
	}

	// A fake clock keeps lease expiry deterministic: one second per
	// assignment request, 30-second TTL — an abandoned lease is reclaimed
	// roughly one round of the whole crowd later.
	now := time.Unix(1_000_000, 0)
	ledger, err := assign.NewLedger(svc, assign.Config{
		Policy:     policy,
		Redundancy: cfg.Redundancy,
		Budget:     cfg.Budget,
		LeaseTTL:   30 * time.Second,
		Seed:       cfg.Seed,
		Now:        func() time.Time { return now },
		Defense:    cfg.Defense,
	})
	if err != nil {
		return LoopResult{}, err
	}

	res := LoopResult{Policy: policyName, Budget: cfg.Budget}
	completedSinceRefresh := 0
	order := make([]int, workers)
	for i := range order {
		order[i] = i
	}
	for rounds := 0; rounds < 100000; rounds++ {
		res.Rounds = rounds + 1
		randx.Shuffle(rng, order)
		progress := false
		for _, w := range order {
			now = now.Add(time.Second)
			lease, err := ledger.Assign(w)
			switch {
			case errors.Is(err, assign.ErrNoTask), errors.Is(err, assign.ErrBudgetExhausted):
				continue
			case errors.Is(err, assign.ErrWorkerBanned):
				continue // the defense layer cut this worker off
			case err != nil:
				return LoopResult{}, err
			}
			progress = true
			if cfg.AbandonProb > 0 && rng.Float64() < cfg.AbandonProb {
				continue // walks away; the lease expires and is reclaimed
			}
			label := crowd.answer(rng, w, lease.Task, truth[lease.Task])
			err = ledger.CompleteValue(lease.ID, w, float64(label), func(task int) error {
				_, ierr := svc.Ingest(stream.Batch{Answers: []dataset.Answer{
					{Task: task, Worker: w, Value: float64(label)},
				}})
				return ierr
			})
			if err != nil {
				return LoopResult{}, fmt.Errorf("closedloop: complete lease %d: %w", lease.ID, err)
			}
			crowd.record(w, lease.Task, label)
			completedSinceRefresh++
			if cfg.RefreshEvery > 0 && completedSinceRefresh >= cfg.RefreshEvery {
				if err := svc.Refresh(); err != nil {
					return LoopResult{}, err
				}
				completedSinceRefresh = 0
			}
		}
		if !progress && ledger.Stats().Outstanding == 0 {
			break // budget spent or board drained, nothing left to reclaim
		}
	}
	if err := svc.Refresh(); err != nil {
		return LoopResult{}, err
	}

	truths, _, err := svc.Truths()
	if err != nil {
		return LoopResult{}, err
	}
	correct, scored := 0, 0
	for i := cfg.GoldenTasks; i < cfg.Tasks; i++ {
		scored++
		if int(truths[i]) == truth[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(scored)
	st := ledger.Stats()
	res.Collected, res.Issued, res.Expired = st.Completed, st.Issued, st.Expired
	res.Banned, res.DownWeighted = st.BannedWorkers, st.DownWeightedWorkers
	res.Suspects = ledger.Suspects()
	return res, nil
}

// ComparePolicies runs the identical closed loop (same seed, same
// hidden crowd) once per policy and returns the results in input order —
// the accuracy-at-fixed-budget comparison of the paper's assignment
// discussion.
func ComparePolicies(cfg LoopConfig, policyNames []string) ([]LoopResult, error) {
	out := make([]LoopResult, 0, len(policyNames))
	for _, name := range policyNames {
		r, err := ClosedLoop(cfg, name)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AccuracyVsBudget sweeps the closed loop over answer budgets for each
// policy (budget-major result order): the quality-per-dollar curve that
// shows where uncertainty routing pulls ahead of random at equal spend.
func AccuracyVsBudget(cfg LoopConfig, policyNames []string, budgets []int) ([][]LoopResult, error) {
	out := make([][]LoopResult, 0, len(budgets))
	for _, b := range budgets {
		c := cfg
		c.Budget = b
		row, err := ComparePolicies(c, policyNames)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
