package closedloop

import (
	"truthinference/internal/core"
)

// NamedCrowd pairs an attack name with the crowd that mounts it.
type NamedCrowd struct {
	Name  string
	Crowd *CrowdSpec
}

// StandardAttacks returns the four canonical attack crowds at the given
// honest/adversary split: a colluding clique, uniform spammers, sleepers
// and copy-paste workers. Pass them to AttackMatrix, or pick one for a
// single defended-vs-undefended comparison.
func StandardAttacks(honest, adversaries int) []NamedCrowd {
	return []NamedCrowd{
		{Name: "collusion", Crowd: &CrowdSpec{Honest: honest, Colluders: adversaries}},
		{Name: "spammer", Crowd: &CrowdSpec{Honest: honest, Spammers: adversaries}},
		{Name: "sleeper", Crowd: &CrowdSpec{Honest: honest, Sleepers: adversaries}},
		{Name: "copy-paste", Crowd: &CrowdSpec{Honest: honest, Copycats: adversaries}},
	}
}

// AttackMatrix runs the closed loop once per (attack, method) pair —
// same seed, same budget, same policy — and returns the results
// attack-major, in input order: the matrix mapping which attacks break
// which methods. base supplies everything but Crowd and Method (set
// base.RefreshEvery for the iterative methods; the incremental ones
// ignore it). A nil method entry runs the default incremental MV.
func AttackMatrix(base LoopConfig, policy string, methods []core.Method, attacks []NamedCrowd) ([][]LoopResult, error) {
	out := make([][]LoopResult, 0, len(attacks))
	for _, a := range attacks {
		row := make([]LoopResult, 0, len(methods))
		for _, m := range methods {
			cfg := base
			cfg.Crowd = a.Crowd
			cfg.Method = m
			r, err := ClosedLoop(cfg, policy)
			if err != nil {
				return nil, err
			}
			row = append(row, r)
		}
		out = append(out, row)
	}
	return out, nil
}
