package simulate

import (
	"math/rand"

	"truthinference/internal/dataset"
	"truthinference/internal/mathx"
	"truthinference/internal/randx"
)

// genDProduct builds the entity-resolution decision dataset.
//
// Calibration targets (Table 5 / §6.1.2 / §6.3.1(4)): 8315 tasks, 24945
// answers (redundancy 3), 176 workers, truth skew 1101 T : 7214 F.
// Workers find *different* products easy (one spotted difference settles
// the task → high q_FF) and *same* products hard (all features must match
// → low q_TT); a minority are spammers, and a small fraction of product
// pairs are intrinsically ambiguous (per-task hardness). This asymmetry
// is exactly what makes confusion-matrix methods dominate
// worker-probability methods on F1 in the paper.
func genDProduct(rng *rand.Rand, scale float64) *dataset.Dataset {
	numTasks := scaleCount(8315, scale, 60)
	numWorkers := scaleCount(176, scale, 12)
	numAnswers := 3 * numTasks
	numPos := scaleCount(1101, scale, 8)

	truth := make([]int, numTasks)
	for _, i := range randx.SampleWithoutReplacement(rng, numTasks, numPos) {
		truth[i] = 1
	}

	workers := make([]catWorker, numWorkers)
	for w := range workers {
		if rng.Float64() < 0.12 {
			// Spammer: near-random on both classes.
			workers[w] = catWorker{conf: drawBetaConfusion(rng, 2,
				[]float64{10, 10}, []float64{10, 10}, nil)}
			continue
		}
		// Normal worker: row 0 = truth F (easy, acc ≈ 0.94),
		// row 1 = truth T (hard, acc ≈ 0.60).
		workers[w] = catWorker{conf: drawBetaConfusion(rng, 2,
			[]float64{33, 6}, []float64{2, 4}, nil)}
	}

	assignment := assign(rng, numTasks, numWorkers, numAnswers, 0.9)
	hardness := hardTasks(rng, numTasks, 0.08, 0.85)
	return buildCategorical(rng, "D_Product", dataset.Decision, 2, truth,
		allTasks(numTasks), workers, assignment, hardness)
}

// genDPosSent builds the tweet-sentiment decision dataset.
//
// Calibration targets: 1000 tasks, 20000 answers (redundancy 20), 85
// workers, truth 528 positive / 472 negative, mean worker accuracy ≈ 0.79
// with symmetric per-class behavior (Accuracy ≈ F1 in the paper because
// the classes are balanced). A tenth of the tweets are genuinely
// ambiguous; they put the ≈96% quality ceiling on every method that the
// paper observes despite 20-fold redundancy.
func genDPosSent(rng *rand.Rand, scale float64) *dataset.Dataset {
	numTasks := scaleCount(1000, scale, 50)
	numWorkers := scaleCount(85, scale, 10)
	numAnswers := 20 * numTasks
	numPos := scaleCount(528, scale, 25)

	truth := make([]int, numTasks)
	for _, i := range randx.SampleWithoutReplacement(rng, numTasks, numPos) {
		truth[i] = 1
	}

	workers := make([]catWorker, numWorkers)
	for w := range workers {
		if rng.Float64() < 0.18 {
			workers[w] = catWorker{conf: drawBetaConfusion(rng, 2,
				[]float64{10, 10}, []float64{10, 10}, nil)}
			continue
		}
		// Symmetric competent worker, accuracy ≈ 0.86 on both classes.
		acc := 12 + 6*rng.Float64()
		workers[w] = catWorker{conf: drawBetaConfusion(rng, 2,
			[]float64{acc, acc}, []float64{2.4, 2.4}, nil)}
	}

	assignment := assign(rng, numTasks, numWorkers, numAnswers, 0.55)
	hardness := hardTasks(rng, numTasks, 0.10, 0.9)
	return buildCategorical(rng, "D_PosSent", dataset.Decision, 2, truth,
		allTasks(numTasks), workers, assignment, hardness)
}

// genSRel builds the 4-choice relevance-judging dataset.
//
// Calibration targets: 20232 tasks (truth published for 4460), 98453
// answers (redundancy ≈ 4.9), 766 workers, mean worker accuracy ≈ 0.53 —
// the lowest-quality crowd of the benchmark. Workers systematically
// confuse *adjacent* relevance grades (highly-relevant ↔ relevant,
// non-relevant ↔ broken-link) and a sizable fraction collapse the scale
// entirely; this class-structured noise is what confusion-matrix methods
// (D&S/BCC/LFC ≈ 61%) can exploit but worker-probability methods cannot
// (ZC drops below MV, §6.3.1). A quarter of the documents are ambiguous.
func genSRel(rng *rand.Rand, scale float64) *dataset.Dataset {
	const ell = 4
	numTasks := scaleCount(20232, scale, 120)
	numWorkers := scaleCount(766, scale, 30)
	numAnswers := scaleCount(98453, scale, 4*120)
	numTruth := scaleCount(4460, scale, 60)

	// Relevance grades are skewed toward non-relevant in TREC judging.
	classDist := []float64{0.15, 0.25, 0.45, 0.15}
	truth := make([]int, numTasks)
	for i := range truth {
		truth[i] = randx.Categorical(rng, classDist)
	}

	// Adjacent-grade confusability: stronger weight for neighbor classes.
	adjacent := [][]float64{
		{0, 3, 1, 0.5},
		{2.5, 0, 2.5, 0.5},
		{0.5, 2, 0, 2.5},
		{0.5, 0.5, 3, 0},
	}
	workers := make([]catWorker, numWorkers)
	for w := range workers {
		r := rng.Float64()
		switch {
		case r < 0.18:
			// Spammer: uniform-ish answers.
			workers[w] = catWorker{conf: drawBetaConfusion(rng, ell,
				[]float64{5, 5, 5, 5}, []float64{15, 15, 15, 15}, nil)}
		case r < 0.30:
			// Scale-collapser: strong systematic bias — "relevant" for
			// the two relevant grades, "non-relevant" otherwise.
			// Recoverable by confusion matrices, poison for
			// worker-probability methods (the collapser looks
			// *consistent*, so ZC trusts it).
			conf := [][]float64{
				{0.12, 0.72, 0.11, 0.05},
				{0.05, 0.74, 0.16, 0.05},
				{0.04, 0.16, 0.75, 0.05},
				{0.05, 0.10, 0.72, 0.13},
			}
			workers[w] = catWorker{conf: perturbRows(rng, conf, 25)}
		default:
			// Mediocre grader with adjacent confusion, diag ≈ 0.53.
			workers[w] = catWorker{conf: drawBetaConfusion(rng, ell,
				[]float64{8, 8, 8, 8}, []float64{7, 7, 7, 7}, adjacent)}
		}
	}

	assignment := assign(rng, numTasks, numWorkers, numAnswers, 0.85)
	hardness := hardTasks(rng, numTasks, 0.18, 0.75)
	return buildCategorical(rng, "S_Rel", dataset.SingleChoice, ell, truth,
		pickTruthSubset(rng, numTasks, numTruth), workers, assignment, hardness)
}

// genSAdult builds the 4-choice website adult-rating dataset.
//
// Calibration targets: 11040 tasks (truth for 1517), 92721 answers
// (redundancy ≈ 8.4), 825 workers. The paper's striking property is that
// *every* method lands at ≈ 36% accuracy, barely above the 'G' class
// frequency: the very-high-volume workers that dominate every task's
// answer set are nearly signal-free and share a bias toward 'G', and the
// remaining workers are only mildly better with the same bias — so no
// weighting scheme can recover much. The generator ties worker quality to
// Zipf rank (heavy rank ⇒ noisier + more biased) to reproduce exactly
// that ceiling. Note: the published per-worker mean accuracy (0.65,
// Fig 3d) is inconsistent with every method scoring 36% under any
// plausible answer distribution; we calibrate to the method table, the
// deviation is recorded in EXPERIMENTS.md.
func genSAdult(rng *rand.Rand, scale float64) *dataset.Dataset {
	const ell = 4
	numTasks := scaleCount(11040, scale, 120)
	numWorkers := scaleCount(825, scale, 30)
	numAnswers := scaleCount(92721, scale, 8*120)
	numTruth := scaleCount(1517, scale, 60)

	classDist := []float64{0.36, 0.28, 0.21, 0.15}
	truth := make([]int, numTasks)
	for i := range truth {
		truth[i] = randx.Categorical(rng, classDist)
	}

	heavyCut := numWorkers / 20 // top 5% of Zipf ranks carry most answers
	if heavyCut < 1 {
		heavyCut = 1
	}
	workers := make([]catWorker, numWorkers)
	for w := range workers {
		if w < heavyCut {
			// Heavy near-random worker biased toward 'G': diagonal at
			// chance level, strong pull to class 0 whatever the truth.
			conf := [][]float64{
				{0.55, 0.20, 0.15, 0.10},
				{0.52, 0.24, 0.14, 0.10},
				{0.50, 0.20, 0.20, 0.10},
				{0.48, 0.20, 0.16, 0.16},
			}
			workers[w] = catWorker{conf: perturbRows(rng, conf, 40)}
			continue
		}
		// Light worker: barely more informative, same 'G' pull — the
		// whole crowd shares the systematic bias, which is what pins
		// every method near the 'G' class frequency.
		conf := [][]float64{
			{0.58, 0.19, 0.14, 0.09},
			{0.44, 0.32, 0.14, 0.10},
			{0.42, 0.19, 0.28, 0.11},
			{0.40, 0.18, 0.17, 0.25},
		}
		workers[w] = catWorker{conf: perturbRows(rng, conf, 30)}
	}

	assignment := assign(rng, numTasks, numWorkers, numAnswers, 1.5)
	hardness := hardTasks(rng, numTasks, 0.20, 0.8)
	return buildCategorical(rng, "S_Adult", dataset.SingleChoice, ell, truth,
		pickTruthSubset(rng, numTasks, numTruth), workers, assignment, hardness)
}

// genNEmotion builds the numeric emotion-scoring dataset.
//
// Calibration targets: 700 tasks, 7000 answers (redundancy 10), 38
// workers, answers in [-100, 100], per-worker RMSE in [20, 45] with mean
// ≈ 28.9 (Figure 3e). Two structural properties drive the paper's method
// ranking (Mean best, CATD worst): every task carries a shared ambiguity
// offset that all workers perceive, and each worker carries a sizable
// systematic bias. Averaging over many workers cancels the biases, but
// quality-weighting concentrates mass on a few low-variance workers whose
// biases then do *not* cancel — so Mean beats PM which beats CATD,
// exactly the Figure 6 / Table 6 ordering.
func genNEmotion(rng *rand.Rand, scale float64) *dataset.Dataset {
	numTasks := scaleCount(700, scale, 40)
	numWorkers := scaleCount(38, scale, 8)
	numAnswers := 10 * numTasks

	truth := make([]float64, numTasks)
	taskShift := make([]float64, numTasks)
	for i := range truth {
		truth[i] = randx.TruncNormal(rng, 0, 40, -100, 100)
		taskShift[i] = 12 * rng.NormFloat64()
	}

	workers := make([]numWorker, numWorkers)
	for w := range workers {
		// Bias-variance correlated mixture: three quarters of the
		// workers are *precise but systematically high* (+10, σ≈13), a
		// quarter *noisy and systematically low* (-30, σ≈25). The
		// mixture's mean bias is ≈ 0, so averaging all workers cancels
		// it (Mean wins); any scheme that weights by apparent precision
		// concentrates on the positive-bias cluster whose shared +10
		// offset then cannot cancel (CATD worst, then PM/LFC_N), and the
		// per-task median also sits inside the positive cluster (Median
		// loses) — the paper's Figure 6 / Table 6 ordering.
		bias := 10 + 2*rng.NormFloat64()
		sigma := 13 + 2*rng.Float64()
		if rng.Float64() < 0.25 {
			bias = -30 + 4*rng.NormFloat64()
			sigma = 25 + 4*rng.Float64()
		}
		workers[w] = numWorker{bias: bias, sigma: sigma}
	}

	assignment := assign(rng, numTasks, numWorkers, numAnswers, 0.5)
	answers := make([]dataset.Answer, 0, numAnswers)
	for i, ws := range assignment {
		for _, w := range ws {
			v := truth[i] + taskShift[i] + workers[w].bias + workers[w].sigma*rng.NormFloat64()
			answers = append(answers, dataset.Answer{
				Task:   i,
				Worker: w,
				Value:  mathx.Clamp(v, -100, 100),
			})
		}
	}
	truthMap := make(map[int]float64, numTasks)
	for i, v := range truth {
		truthMap[i] = v
	}
	d, err := dataset.New("N_Emotion", dataset.Numeric, 0, numTasks, numWorkers, answers, truthMap)
	if err != nil {
		panic("simulate: generated invalid dataset: " + err.Error())
	}
	return d
}

// perturbRows resamples each row of a template confusion matrix from a
// Dirichlet centered on it with the given concentration, giving each
// worker an individual variation of the archetype.
func perturbRows(rng *rand.Rand, template [][]float64, concentration float64) [][]float64 {
	out := make([][]float64, len(template))
	alpha := make([]float64, len(template))
	for j, row := range template {
		for k, p := range row {
			alpha[k] = p*concentration + 0.2
		}
		out[j] = randx.Dirichlet(rng, alpha)
	}
	return out
}
