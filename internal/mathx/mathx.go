// Package mathx provides the special-function and numeric-stability
// substrate used by the truth-inference algorithms: digamma/trigamma,
// the regularized incomplete gamma function and its inverse (which gives
// the chi-square quantile needed by CATD), the logistic function, and
// numerically stable log-space reductions.
//
// Everything here is implemented from scratch on top of the standard
// library's math package; no external numeric dependencies are used.
package mathx

import (
	"math"
)

// Logistic returns the standard logistic sigmoid 1/(1+exp(-x)), computed in
// a way that does not overflow for large |x|.
func Logistic(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Logit is the inverse of Logistic: log(p/(1-p)). It returns ±Inf at the
// boundary values 0 and 1.
func Logit(p float64) float64 {
	return math.Log(p / (1 - p))
}

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. It returns -Inf
// for an empty slice, matching the convention log(0) = -Inf.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// NormalizeLog exponentiates and normalizes a vector of log-weights in
// place so that the result is a probability distribution. It is stable for
// widely ranged inputs. If all inputs are -Inf the result is uniform.
func NormalizeLog(logw []float64) {
	if len(logw) == 0 {
		return
	}
	lse := LogSumExp(logw)
	if math.IsInf(lse, -1) {
		u := 1 / float64(len(logw))
		for i := range logw {
			logw[i] = u
		}
		return
	}
	for i, x := range logw {
		logw[i] = math.Exp(x - lse)
	}
}

// Normalize scales a non-negative vector in place to sum to one. If the sum
// is zero or not finite it assigns the uniform distribution.
func Normalize(w []float64) {
	if len(w) == 0 {
		return
	}
	var s float64
	for _, x := range w {
		s += x
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// Digamma returns the digamma function ψ(x), the derivative of log Γ(x).
// It uses the recurrence ψ(x) = ψ(x+1) - 1/x to shift the argument above 6
// and then the asymptotic expansion. Accuracy is roughly 1e-12 for x > 0.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	var result float64
	// Reflection for negative arguments: ψ(1-x) - ψ(x) = π·cot(πx).
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // poles at non-positive integers
		}
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic series: ψ(x) ≈ ln x - 1/(2x) - Σ B_{2n}/(2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*1.0/132))))
	return result
}

// Trigamma returns ψ'(x), the derivative of the digamma function.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN()
		}
		// ψ'(1-x) + ψ'(x) = π²/sin²(πx)
		s := math.Sin(math.Pi * x)
		return math.Pi*math.Pi/(s*s) - Trigamma(1-x)
	}
	var result float64
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ψ'(x) ≈ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}
	result += inv * (1 + 0.5*inv + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2*1.0/30))))
	return result
}

// GammaIncReg returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0. It uses the power series for
// x < a+1 and the continued fraction for the upper tail otherwise.
func GammaIncReg(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaIncRegComp returns the complementary regularized incomplete gamma
// Q(a, x) = 1 - P(a, x).
func GammaIncRegComp(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

const (
	gammaEps     = 1e-15
	gammaMaxIter = 500
)

func gammaPSeries(a, x float64) float64 {
	// P(a,x) = x^a e^{-x} / Γ(a) * Σ_{n≥0} x^n / (a(a+1)...(a+n))
	lg, _ := math.Lgamma(a)
	logPrefix := a*math.Log(x) - x - lg
	term := 1 / a
	sum := term
	ap := a
	for n := 0; n < gammaMaxIter; n++ {
		ap++
		term *= x / ap
		sum += term
		if math.Abs(term) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return math.Exp(logPrefix) * sum
}

func gammaQContinuedFraction(a, x float64) float64 {
	// Lentz's algorithm for the continued fraction of Q(a,x).
	lg, _ := math.Lgamma(a)
	logPrefix := a*math.Log(x) - x - lg
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(logPrefix) * h
}

// ChiSquareCDF returns Pr(X ≤ x) for X ~ χ²(k).
func ChiSquareCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncReg(k/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the chi-square distribution
// with k degrees of freedom, i.e. the x with Pr(X ≤ x) = p. It starts from
// the Wilson–Hilferty approximation and polishes with bisection-guarded
// Newton iterations on the CDF. Panics are never raised; invalid inputs
// return NaN.
func ChiSquareQuantile(p, k float64) float64 {
	if k <= 0 || p < 0 || p > 1 || math.IsNaN(p) || math.IsNaN(k) {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty: X ≈ k(1 - 2/(9k) + z sqrt(2/(9k)))³
	z := NormalQuantile(p)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	x := k * t * t * t
	if x <= 0 || math.IsNaN(x) {
		x = k // fall back to the mean
	}
	lo, hi := 0.0, math.Max(4*k+100, 4*x+100)
	// Expand hi until it brackets.
	for ChiSquareCDF(hi, k) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.NaN()
		}
	}
	for i := 0; i < 200; i++ {
		f := ChiSquareCDF(x, k) - p
		if math.Abs(f) < 1e-13 {
			return x
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step using the chi-square pdf.
		pdf := chiSquarePDF(x, k)
		var next float64
		if pdf > 0 {
			next = x - f/pdf
		}
		if pdf <= 0 || next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-13*(1+x) {
			return next
		}
		x = next
	}
	return x
}

func chiSquarePDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(k / 2)
	logp := (k/2-1)*math.Log(x) - x/2 - (k/2)*math.Ln2 - lg
	return math.Exp(logp)
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation refined with one
// Halley step against math.Erfc, giving ~1e-15 relative accuracy.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return math.Inf(-1)
	}
	if p == 1 {
		return math.Inf(1)
	}
	// Acklam's approximation coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step: e = CDF(x) - p.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n), or NaN
// for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Median returns the median of xs without modifying the input, or NaN for
// an empty slice. For even lengths it averages the two central values.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	cp := make([]float64, n)
	copy(cp, xs)
	// Insertion-free selection via sort of the copy: n is small in every
	// call site (answers per task), so an O(n log n) sort is fine.
	sortFloats(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

func sortFloats(xs []float64) {
	// Shell sort: avoids importing sort for a tiny utility and is
	// deterministic for NaN-free inputs.
	n := len(xs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			x := xs[i]
			j := i
			for j >= gap && xs[j-gap] > x {
				xs[j] = xs[j-gap]
				j -= gap
			}
			xs[j] = x
		}
	}
}
