package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eulerGamma = 0.5772156649015329

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

func TestLogisticKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
		{2, 1 / (1 + math.Exp(-2))},
		{-2, 1 / (1 + math.Exp(2))},
	}
	for _, c := range cases {
		if got := Logistic(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("Logistic(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// No overflow in the far tails.
	if got := Logistic(1000); got != 1 {
		t.Errorf("Logistic(1000) = %v, want 1", got)
	}
	if got := Logistic(-1000); got != 0 {
		t.Errorf("Logistic(-1000) = %v, want 0", got)
	}
}

func TestLogitLogisticRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01 // p in [0.01, 0.99]
		return almost(Logistic(Logit(p)), p, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	if got := LogSumExp([]float64{0, 0}); !almost(got, math.Ln2, 1e-12) {
		t.Errorf("LogSumExp(0,0) = %v, want ln 2", got)
	}
	// Stability: huge inputs must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); !almost(got, 1000+math.Ln2, 1e-12) {
		t.Errorf("LogSumExp(1000,1000) = %v", got)
	}
	// Property: shifting all inputs by c shifts the result by c.
	f := func(a, b, c float64) bool {
		a, b, c = math.Mod(a, 50), math.Mod(b, 50), math.Mod(c, 50)
		x := LogSumExp([]float64{a, b})
		y := LogSumExp([]float64{a + c, b + c})
		return almost(y, x+c, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeLogProducesDistribution(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		logw := make([]float64, len(xs))
		for i, x := range xs {
			logw[i] = math.Mod(x, 100) // keep finite
		}
		NormalizeLog(logw)
		var sum float64
		for _, p := range logw {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almost(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// All -Inf → uniform.
	logw := []float64{math.Inf(-1), math.Inf(-1)}
	NormalizeLog(logw)
	if logw[0] != 0.5 || logw[1] != 0.5 {
		t.Errorf("NormalizeLog(-Inf,-Inf) = %v, want uniform", logw)
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{1, 3}
	Normalize(w)
	if w[0] != 0.25 || w[1] != 0.75 {
		t.Errorf("Normalize = %v", w)
	}
	// Zero vector → uniform.
	z := []float64{0, 0, 0, 0}
	Normalize(z)
	for _, p := range z {
		if p != 0.25 {
			t.Errorf("Normalize(zeros) = %v, want uniform", z)
		}
	}
}

func TestDigammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, -eulerGamma},
		{2, 1 - eulerGamma},
		{0.5, -eulerGamma - 2*math.Ln2},
		{10, 2.251752589066721},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almost(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Digamma(0)) || !math.IsNaN(Digamma(-3)) {
		t.Error("Digamma at non-positive integers should be NaN")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x for all x > 0.
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 50) + 0.01
		return almost(Digamma(x+1), Digamma(x)+1/x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigammaRecurrenceAndKnown(t *testing.T) {
	if got := Trigamma(1); !almost(got, math.Pi*math.Pi/6, 1e-10) {
		t.Errorf("Trigamma(1) = %v, want π²/6", got)
	}
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 50) + 0.01
		return almost(Trigamma(x+1), Trigamma(x)-1/(x*x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaIncRegKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaIncReg(1, x); !almost(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a,0)=0, P(a,∞)=1, complementarity.
	if GammaIncReg(3, 0) != 0 {
		t.Error("P(3,0) != 0")
	}
	if GammaIncReg(3, math.Inf(1)) != 1 {
		t.Error("P(3,Inf) != 1")
	}
	f := func(ra, rx float64) bool {
		a := math.Mod(math.Abs(ra), 30) + 0.1
		x := math.Mod(math.Abs(rx), 60)
		p := GammaIncReg(a, x)
		q := GammaIncRegComp(a, x)
		return p >= 0 && p <= 1 && almost(p+q, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFAgainstKnownQuantiles(t *testing.T) {
	// Classic table values: χ²(0.95, 1) = 3.841, χ²(0.975, 10) = 20.483.
	cases := []struct{ p, k, want float64 }{
		{0.95, 1, 3.841458820694124},
		{0.975, 10, 20.48317735029304},
		{0.975, 1, 5.023886187314888},
		{0.5, 4, 3.356694},
	}
	for _, c := range cases {
		if got := ChiSquareQuantile(c.p, c.k); !almost(got, c.want, 1e-5) {
			t.Errorf("ChiSquareQuantile(%v,%v) = %v, want %v", c.p, c.k, got, c.want)
		}
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	f := func(rp, rk float64) bool {
		p := math.Mod(math.Abs(rp), 0.9) + 0.05
		k := math.Mod(math.Abs(rk), 200) + 0.5
		x := ChiSquareQuantile(p, k)
		return almost(ChiSquareCDF(x, k), p, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestChiSquareQuantileMonotoneInDF(t *testing.T) {
	// The CATD coefficient χ²(0.975, n) must increase with n — the paper's
	// §4.2.4 justification that more answers scale quality up.
	prev := 0.0
	for n := 1; n <= 100; n++ {
		q := ChiSquareQuantile(0.975, float64(n))
		if q <= prev {
			t.Fatalf("χ²(0.975,%d) = %v not greater than χ²(0.975,%d) = %v", n, q, n-1, prev)
		}
		prev = q
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almost(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Symmetry property: Q(p) = -Q(1-p).
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01
		return almost(NormalQuantile(p), -NormalQuantile(1-p), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almost(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("odd Median = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty-slice statistics should be NaN")
	}
	// Median must not mutate its input.
	orig := []float64{3, 1, 2}
	Median(orig)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Median mutated input: %v", orig)
	}
}

func TestMedianMatchesSortDefinition(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		med := Median(clean)
		// At least half the points are ≤ med and at least half are ≥ med.
		le, ge := 0, 0
		for _, x := range clean {
			if x <= med {
				le++
			}
			if x >= med {
				ge++
			}
		}
		return 2*le >= len(clean) && 2*ge >= len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
