package loadgen

import (
	"testing"
	"time"
)

// TestParseRetryAfter pins the RFC 9110 delta-seconds contract: only a
// non-negative decimal integer counts; everything else reads as 0 and
// is booked against the server as RetryAfterMissing. The regression
// being guarded: the old code appended "s" and used time.ParseDuration,
// which read "1m" as one *millisecond* ("1ms") and accepted fractional
// and suffixed values the RFC forbids.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"1", time.Second},
		{"60", time.Minute},
		{"0", 0},
		{"", 0},
		{"1m", 0},                            // the old bug: parsed as 1ms
		{"1.5", 0},                           // fractions are not delta-seconds
		{"2s", 0},                            // duration syntax is not delta-seconds
		{"-3", 0},                            // negative is nonsense
		{" 5", 0},                            // no whitespace tolerance
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP dates unsupported
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
