package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"truthinference/internal/dataset"
	"truthinference/internal/methods/direct"
	"truthinference/internal/stream"
)

func loadServer(t *testing.T, limits stream.Limits) *httptest.Server {
	t.Helper()
	store, err := stream.NewStore("loadgen-test", dataset.Decision, 2)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := stream.NewService(store, stream.Config{Method: direct.NewMV(), Limits: limits})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { svc.Close() })
	return ts
}

func TestRunMixedTraffic(t *testing.T) {
	ts := loadServer(t, stream.Limits{})
	res, err := Config{
		BaseURL:          ts.URL,
		Workers:          2,
		Duration:         400 * time.Millisecond,
		SingleRatio:      0.5,
		BatchSize:        20,
		FramesPerRequest: 2,
		NumTasks:         50,
		NumWorkers:       10,
		Seed:             7,
		Client:           ts.Client(),
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors > 0 {
		t.Fatalf("run saw %d errors, first: %s", res.Errors, res.FirstError)
	}
	if res.Requests == 0 || res.AnswersAccepted == 0 {
		t.Fatalf("no traffic got through: %+v", res)
	}
	if res.SingleRequests == 0 || res.BatchRequests == 0 {
		t.Fatalf("mix did not cover both paths: single=%d batch=%d", res.SingleRequests, res.BatchRequests)
	}
	if res.LastVersion == 0 {
		t.Fatalf("no store version observed: %+v", res)
	}
	if res.AnswersPerSec <= 0 {
		t.Fatalf("AnswersPerSec not computed: %+v", res)
	}
}

func TestRunObservesBackpressure(t *testing.T) {
	// A near-zero admission rate sheds every request after the first
	// borrow; every 429 must carry Retry-After.
	ts := loadServer(t, stream.Limits{RatePerSec: 0.001, Burst: 1})
	res, err := Config{
		BaseURL:          ts.URL,
		Workers:          2,
		Duration:         300 * time.Millisecond,
		BatchSize:        10,
		FramesPerRequest: 1,
		NumTasks:         20,
		NumWorkers:       5,
		Seed:             3,
		Client:           ts.Client(),
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors > 0 {
		t.Fatalf("run saw %d errors, first: %s", res.Errors, res.FirstError)
	}
	if res.Shed == 0 {
		t.Fatalf("backpressure never engaged: %+v", res)
	}
	if res.RetryAfterMissing != 0 {
		t.Fatalf("%d shed responses lacked Retry-After", res.RetryAfterMissing)
	}
	if res.AnswersShed == 0 {
		t.Fatalf("shed answers not accounted: %+v", res)
	}
}

func TestRunRejectsBadRatio(t *testing.T) {
	if _, err := (Config{BaseURL: "http://x", SingleRatio: 2}).Run(context.Background()); err == nil {
		t.Fatal("SingleRatio 2 accepted")
	}
	if _, err := (Config{}).Run(context.Background()); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
}
