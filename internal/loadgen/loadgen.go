// Package loadgen drives mixed single/batched ingest traffic against a
// live truthserve and measures what the server actually sustained:
// answers/sec accepted, requests shed with 429, and whether every shed
// response honored the Retry-After contract. cmd/loadgen wraps it as a
// binary; internal/benchjson reuses it in-process for the BENCH
// trajectory's HTTP ingest measurement.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"truthinference/internal/api"
	"truthinference/internal/dataset"
	"truthinference/internal/stream"
	"truthinference/internal/telemetry"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Project addresses /v1/projects/{Project}/...; empty uses the
	// legacy unprefixed /v1/... routes (the deprecated alias).
	Project string
	// Workers is the number of concurrent client goroutines.
	Workers int
	// Duration bounds the run (ctx can end it earlier).
	Duration time.Duration
	// SingleRatio is the fraction of requests sent as single-answer
	// JSON POSTs (0 = all batched, 1 = all single).
	SingleRatio float64
	// BatchSize is answers per frame on the batched path.
	BatchSize int
	// FramesPerRequest is frames per batched request body.
	FramesPerRequest int
	// NumTasks/NumWorkers bound the generated id space.
	NumTasks, NumWorkers int
	// Seed fixes the generated traffic.
	Seed int64
	// HonorRetryAfter makes a worker sleep out the server's Retry-After
	// after a 429 (a compliant client); false keeps hammering, which is
	// what an overload probe wants.
	HonorRetryAfter bool
	// Client overrides the HTTP client (tests inject the httptest
	// server's). nil uses a dedicated pooled client.
	Client *http.Client
}

// Result is what the run measured.
type Result struct {
	Elapsed           time.Duration `json:"elapsed"`
	Requests          int64         `json:"requests"`
	SingleRequests    int64         `json:"single_requests"`
	BatchRequests     int64         `json:"batch_requests"`
	AnswersAccepted   int64         `json:"answers_accepted"`
	AnswersShed       int64         `json:"answers_shed"`
	Shed              int64         `json:"shed_429"`
	RetryAfterMissing int64         `json:"retry_after_missing"`
	Errors            int64         `json:"errors"`
	FirstError        string        `json:"first_error,omitempty"`
	AnswersPerSec     float64       `json:"answers_per_sec"`
	LastVersion       uint64        `json:"last_version"`
	LastDurable       uint64        `json:"last_durable_version"`
	// SingleLatency/BatchLatency summarize per-endpoint request latency
	// (nil when that endpoint saw no completed requests).
	SingleLatency *LatencyStats `json:"single_latency,omitempty"`
	BatchLatency  *LatencyStats `json:"batch_latency,omitempty"`
}

// LatencyStats is one endpoint's latency summary, interpolated from a
// fixed-bucket histogram (the same buckets the server's telemetry uses).
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func latencyStats(h *telemetry.Histogram) *LatencyStats {
	if h.Count() == 0 {
		return nil
	}
	return &LatencyStats{
		Count: h.Count(),
		P50Ms: h.Quantile(0.50) * 1000,
		P95Ms: h.Quantile(0.95) * 1000,
		P99Ms: h.Quantile(0.99) * 1000,
	}
}

// counters is the shared accumulator behind Result.
type counters struct {
	requests, single, batch     atomic.Int64
	accepted, shedAnswers, shed atomic.Int64
	retryAfterMissing, errs     atomic.Int64
	lastVersion, lastDurable    atomic.Uint64
	firstErr                    atomic.Value // string
	singleLat, batchLat         *telemetry.Histogram
}

func (c *counters) error(err error) {
	c.errs.Add(1)
	c.firstErr.CompareAndSwap(nil, err.Error())
}

func maxU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Run drives the configured traffic until Duration elapses or ctx ends,
// whichever is first. It returns an error only for configuration
// problems; transport and HTTP failures are counted in the Result.
func (cfg Config) Run(ctx context.Context) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 500
	}
	if cfg.FramesPerRequest <= 0 {
		cfg.FramesPerRequest = 4
	}
	if cfg.NumTasks <= 0 {
		cfg.NumTasks = 2000
	}
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = 200
	}
	if cfg.SingleRatio < 0 || cfg.SingleRatio > 1 {
		return Result{}, fmt.Errorf("loadgen: SingleRatio %v outside [0,1]", cfg.SingleRatio)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.Workers,
			},
		}
	}
	prefix := cfg.BaseURL + "/v1"
	if cfg.Project != "" {
		prefix = cfg.BaseURL + "/v1/projects/" + cfg.Project
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	c := counters{
		singleLat: telemetry.NewHistogram(telemetry.LatencyBuckets),
		batchLat:  telemetry.NewHistogram(telemetry.LatencyBuckets),
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for runCtx.Err() == nil {
				if rng.Float64() < cfg.SingleRatio {
					cfg.doSingle(runCtx, client, prefix, rng, &c)
				} else {
					cfg.doBatch(runCtx, client, prefix, rng, &c)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Elapsed:           elapsed,
		Requests:          c.requests.Load(),
		SingleRequests:    c.single.Load(),
		BatchRequests:     c.batch.Load(),
		AnswersAccepted:   c.accepted.Load(),
		AnswersShed:       c.shedAnswers.Load(),
		Shed:              c.shed.Load(),
		RetryAfterMissing: c.retryAfterMissing.Load(),
		Errors:            c.errs.Load(),
		LastVersion:       c.lastVersion.Load(),
		LastDurable:       c.lastDurable.Load(),
		SingleLatency:     latencyStats(c.singleLat),
		BatchLatency:      latencyStats(c.batchLat),
	}
	if s, ok := c.firstErr.Load().(string); ok {
		res.FirstError = s
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.AnswersPerSec = float64(res.AnswersAccepted) / sec
	}
	return res, nil
}

// randomAnswers fills a batch with n uniformly spread decision answers.
func (cfg Config) randomAnswers(rng *rand.Rand, n int) []dataset.Answer {
	answers := make([]dataset.Answer, n)
	for i := range answers {
		answers[i] = dataset.Answer{
			Task:   rng.Intn(cfg.NumTasks),
			Worker: rng.Intn(cfg.NumWorkers),
			Value:  float64(rng.Intn(2)),
		}
	}
	return answers
}

func (cfg Config) doSingle(ctx context.Context, client *http.Client, prefix string, rng *rand.Rand, c *counters) {
	a := cfg.randomAnswers(rng, 1)[0]
	body, _ := json.Marshal(api.IngestRequest{
		Answers:    []api.Answer{{Task: a.Task, Worker: a.Worker, Value: a.Value}},
		NumTasks:   cfg.NumTasks,
		NumWorkers: cfg.NumWorkers,
	})
	c.single.Add(1)
	reqStart := time.Now()
	resp, retry, err := post(ctx, client, prefix+"/ingest", "application/json", body)
	if err != nil {
		if ctx.Err() == nil {
			c.error(err)
		}
		return
	}
	c.singleLat.Observe(time.Since(reqStart).Seconds())
	c.requests.Add(1)
	switch {
	case resp.status == http.StatusOK:
		c.accepted.Add(1)
		maxU64(&c.lastVersion, resp.ingest.Version)
	case resp.status == http.StatusTooManyRequests:
		c.shed.Add(1)
		c.shedAnswers.Add(1)
		cfg.backoff(ctx, retry, c)
	default:
		c.error(fmt.Errorf("loadgen: POST ingest → %d: %s", resp.status, resp.snippet))
	}
}

func (cfg Config) doBatch(ctx context.Context, client *http.Client, prefix string, rng *rand.Rand, c *counters) {
	batches := make([]stream.Batch, cfg.FramesPerRequest)
	total := 0
	for i := range batches {
		batches[i] = stream.Batch{
			NumTasks:   cfg.NumTasks,
			NumWorkers: cfg.NumWorkers,
			Answers:    cfg.randomAnswers(rng, cfg.BatchSize),
		}
		total += cfg.BatchSize
	}
	body, err := stream.EncodeBatchStream(batches)
	if err != nil {
		c.error(err)
		return
	}
	c.batch.Add(1)
	reqStart := time.Now()
	resp, retry, err := post(ctx, client, prefix+"/ingest-batch", "application/octet-stream", body)
	if err != nil {
		if ctx.Err() == nil {
			c.error(err)
		}
		return
	}
	c.batchLat.Observe(time.Since(reqStart).Seconds())
	c.requests.Add(1)
	switch {
	case resp.status == http.StatusOK:
		c.accepted.Add(int64(total))
		maxU64(&c.lastVersion, resp.batchIngest.Version)
		maxU64(&c.lastDurable, resp.batchIngest.DurableVersion)
	case resp.status == http.StatusTooManyRequests:
		c.shed.Add(1)
		c.shedAnswers.Add(int64(total))
		cfg.backoff(ctx, retry, c)
	default:
		c.error(fmt.Errorf("loadgen: POST ingest-batch → %d: %s", resp.status, resp.snippet))
	}
}

// backoff accounts a 429's Retry-After header and optionally honors it.
func (cfg Config) backoff(ctx context.Context, retryAfter time.Duration, c *counters) {
	if retryAfter <= 0 {
		c.retryAfterMissing.Add(1)
		return
	}
	if cfg.HonorRetryAfter {
		select {
		case <-ctx.Done():
		case <-time.After(retryAfter):
		}
	}
}

// response is the decoded slice of a server reply the driver cares about.
type response struct {
	status      int
	snippet     string
	ingest      api.IngestResponse
	batchIngest api.BatchIngestResponse
}

func post(ctx context.Context, client *http.Client, url, contentType string, body []byte) (response, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return response{}, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		return response{}, 0, err
	}
	defer resp.Body.Close()
	out := response{status: resp.StatusCode}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	io.Copy(io.Discard, resp.Body)
	var retry time.Duration
	switch resp.StatusCode {
	case http.StatusOK:
		// One decode into whichever shape fits; both are supersets of
		// {"version":...} so a stray mismatch only zeroes optional fields.
		json.Unmarshal(data, &out.ingest)
		json.Unmarshal(data, &out.batchIngest)
	case http.StatusTooManyRequests:
		retry = parseRetryAfter(resp.Header.Get("Retry-After"))
	default:
		out.snippet = string(data)
		if len(out.snippet) > 200 {
			out.snippet = out.snippet[:200]
		}
	}
	return out, retry, nil
}

// parseRetryAfter parses a Retry-After header as RFC 9110 delta-seconds:
// a non-negative decimal integer, nothing else. Durations ("1m"),
// fractions, and HTTP dates all return 0 and are counted against the
// server as RetryAfterMissing — the contract the loadgen verifies is
// that every 429 carries integer seconds. (The old implementation
// appended "s" and used time.ParseDuration, which read "1m" as one
// millisecond and happily accepted values the RFC forbids.)
func parseRetryAfter(header string) time.Duration {
	secs, err := strconv.Atoi(header)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
