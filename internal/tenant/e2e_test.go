package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"truthinference/internal/assign"
	"truthinference/internal/testutil"
)

// TestTwoProjectsConcurrentIsolationAndRecovery is the multi-tenant
// acceptance gate: two projects with different methods, task types and
// assignment policies take concurrent ingest + assign/complete traffic
// over HTTP with no cross-talk, and after a simulated restart both
// recover their WAL namespaces to bit-identical stores.
func TestTwoProjectsConcurrentIsolationAndRecovery(t *testing.T) {
	root := t.TempDir()
	reg := NewRegistry(root, testutil.Logger(t))
	if err := reg.Bootstrap(Config{Method: "MV", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// alpha: categorical MV behind the uncertainty router; small
	// snapshot cadence so compaction runs mid-test.
	alphaCfg := Config{
		Method: "MV", TaskType: "decision", Seed: 11, Shards: 4, SnapshotEvery: 3,
		Assign: &assign.Spec{Policy: "uncertainty", Redundancy: 3, LeaseTTL: assign.Duration(6e10)},
	}
	// beta: numeric Mean behind least-answered balancing, different
	// shard count, compaction only on shutdown.
	betaCfg := Config{
		Method: "Mean", TaskType: "numeric", Seed: 22, Shards: 2, SnapshotEvery: -1,
		Assign: &assign.Spec{Policy: "least-answered", Redundancy: 2, LeaseTTL: assign.Duration(6e10)},
	}
	if _, err := reg.Create("alpha", alphaCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("beta", betaCfg); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	// Declare disjoint task/worker spaces in each project.
	for _, pre := range []struct{ id, body string }{
		{"alpha", `{"num_tasks":24,"num_workers":10}`},
		{"beta", `{"num_tasks":16,"num_workers":8}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/projects/"+pre.id+"/ingest", "application/json", bytes.NewBufferString(pre.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("declare %s: HTTP %d", pre.id, resp.StatusCode)
		}
	}

	// Concurrent traffic: per project, direct ingest writers racing
	// assign→complete workers. Every successful completion and ingest is
	// counted so the final per-project answer totals are exact.
	var wg sync.WaitGroup
	var alphaIngested, betaIngested, alphaCompleted, betaCompleted atomicCounter

	ingest := func(project string, task, worker int, value float64, counter *atomicCounter) {
		body := fmt.Sprintf(`{"answers":[{"task":%d,"worker":%d,"value":%g}]}`, task, worker, value)
		resp, err := http.Post(ts.URL+"/v1/projects/"+project+"/ingest", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s ingest: HTTP %d", project, resp.StatusCode)
			return
		}
		counter.add(1)
	}
	// Direct writers: 4 goroutines per project over disjoint task ranges.
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				task := g*6 + i
				ingest("alpha", task, g, float64(i%2), &alphaIngested)
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				task := g*4 + i
				ingest("beta", task, g, float64(10*g+i), &betaIngested)
			}
		}(g)
	}
	// Assignment workers: lease and complete until no task or budget is
	// left for them. They use high worker ids so they never collide with
	// the direct writers' self-exclusion seeding mid-run.
	assignLoop := func(project string, worker int, value float64, counter *atomicCounter) {
		defer wg.Done()
		for {
			resp, err := http.Get(fmt.Sprintf("%s/v1/projects/%s/assign?worker=%d", ts.URL, project, worker))
			if err != nil {
				t.Error(err)
				return
			}
			var lease struct {
				LeaseID uint64 `json:"lease_id"`
			}
			code := resp.StatusCode
			if code == http.StatusOK {
				if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
					t.Error(err)
					resp.Body.Close()
					return
				}
			}
			resp.Body.Close()
			if code != http.StatusOK {
				return // drained: 404 no task / 409 budget
			}
			body := fmt.Sprintf(`{"lease_id":%d,"worker":%d,"value":%g}`, lease.LeaseID, worker, value)
			cresp, err := http.Post(ts.URL+"/v1/projects/"+project+"/complete", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Error(err)
				return
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusOK {
				t.Errorf("%s complete: HTTP %d", project, cresp.StatusCode)
				return
			}
			counter.add(1)
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(2)
		go assignLoop("alpha", 7+w, float64(w%2), &alphaCompleted)
		go assignLoop("beta", 5+w, float64(100+w), &betaCompleted)
	}
	wg.Wait()

	// No cross-talk: each store holds exactly its own traffic.
	wantAlpha := alphaIngested.get() + alphaCompleted.get()
	wantBeta := betaIngested.get() + betaCompleted.get()
	if wantAlpha == 0 || wantBeta == 0 {
		t.Fatal("test generated no traffic")
	}
	alphaP, _ := reg.Get("alpha")
	betaP, _ := reg.Get("beta")
	if _, _, answers := alphaP.Store().Dims(); answers != wantAlpha {
		t.Errorf("alpha holds %d answers, want %d", answers, wantAlpha)
	}
	if _, _, answers := betaP.Store().Dims(); answers != wantBeta {
		t.Errorf("beta holds %d answers, want %d", answers, wantBeta)
	}
	if tasks, _, _ := alphaP.Store().Dims(); tasks != 24 {
		t.Errorf("alpha grew to %d tasks (cross-talk?)", tasks)
	}
	if tasks, _, _ := betaP.Store().Dims(); tasks != 16 {
		t.Errorf("beta grew to %d tasks (cross-talk?)", tasks)
	}

	// Capture both stores bit-for-bit, then simulate the restart.
	alphaBytes, alphaVersion := marshalStore(t, alphaP)
	betaBytes, betaVersion := marshalStore(t, betaP)
	if err := reg.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	reg2 := NewRegistry(root, testutil.Logger(t))
	defer reg2.Close()
	if err := reg2.Bootstrap(Config{Method: "MV", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg2.Recover(); err != nil {
		t.Fatal(err)
	}
	alpha2, ok := reg2.Get("alpha")
	if !ok {
		t.Fatal("alpha not recovered")
	}
	beta2, ok := reg2.Get("beta")
	if !ok {
		t.Fatal("beta not recovered")
	}
	gotAlpha, gotAlphaVersion := marshalStore(t, alpha2)
	gotBeta, gotBetaVersion := marshalStore(t, beta2)
	if gotAlphaVersion != alphaVersion || !bytes.Equal(gotAlpha, alphaBytes) {
		t.Errorf("alpha did not recover bit-identically: version %d→%d, %d vs %d bytes equal=%v",
			alphaVersion, gotAlphaVersion, len(alphaBytes), len(gotAlpha), bytes.Equal(gotAlpha, alphaBytes))
	}
	if gotBetaVersion != betaVersion || !bytes.Equal(gotBeta, betaBytes) {
		t.Errorf("beta did not recover bit-identically: version %d→%d, %d vs %d bytes equal=%v",
			betaVersion, gotBetaVersion, len(betaBytes), len(gotBeta), bytes.Equal(gotBeta, betaBytes))
	}

	// Recovered ledgers keep the self-exclusion seeding: an assignment
	// worker that completed a task before the restart is never handed
	// that task again (checked structurally: its exclusion came from the
	// recovered store, so any newly leased task must be one it has not
	// answered).
	if alpha2.Ledger() == nil || beta2.Ledger() == nil {
		t.Fatal("recovered projects lost their ledgers")
	}
}

// marshalStore snapshots a project's store into the stable binary
// encoding (plus the version it reflects).
func marshalStore(t *testing.T, p *Project) ([]byte, uint64) {
	t.Helper()
	d, version := p.Store().Snapshot()
	enc, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return enc, version
}

// atomicCounter is a tiny test helper (sync/atomic.Int64 with ints).
type atomicCounter struct {
	mu sync.Mutex
	n  int
}

func (c *atomicCounter) add(d int) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *atomicCounter) get() int  { c.mu.Lock(); defer c.mu.Unlock(); return c.n }
