package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"

	ti "truthinference"
	"truthinference/internal/assign"
	"truthinference/internal/dataset"
	"truthinference/internal/stream"
	"truthinference/internal/stream/wal"
)

// Config is one project's serving configuration — the JSON shape stored
// in the registry manifest, accepted by the admin API and by the
// -projects boot file. It carries exactly what the legacy per-daemon
// flags carried, per project.
type Config struct {
	// Method is the truth-inference method to serve (see truthinfer
	// -list). Required.
	Method string `json:"method"`
	// TaskType is the live store's task family: "decision" (default),
	// "single-choice" or "numeric".
	TaskType string `json:"task_type,omitempty"`
	// Choices is ℓ for single-choice stores (decision forces 2, numeric
	// 0).
	Choices int `json:"choices,omitempty"`
	// Seed fixes the project's inference and assignment randomness.
	Seed int64 `json:"seed,omitempty"`
	// MaxIter caps iterations per epoch (0 = method default).
	MaxIter int `json:"max_iter,omitempty"`
	// Parallelism is the per-epoch worker goroutine count (0 = all CPUs,
	// 1 = sequential).
	Parallelism int `json:"parallelism,omitempty"`
	// Shards is the project store's shard count (0 = stream default).
	// Contention tuning only; state is shard-count independent.
	Shards int `json:"shards,omitempty"`
	// ColdStart disables warm starts (every epoch from cold init).
	ColdStart bool `json:"cold_start,omitempty"`
	// NoAutoRefresh disables background re-inference after each batch
	// (the default, like the legacy -auto-refresh flag, is on).
	NoAutoRefresh bool `json:"no_auto_refresh,omitempty"`
	// Data optionally preloads a <base>.answers.tsv dataset from the
	// daemon's filesystem. Recovery replays the WAL on top of it, so the
	// file must stay in place (and unchanged) across restarts.
	Data string `json:"data,omitempty"`
	// SnapshotEvery is the WAL compaction cadence when the registry is
	// durable: batches between compacted snapshots. 0 means the
	// DefaultSnapshotEvery; negative disables automatic compaction
	// (snapshots happen only on clean shutdown).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Assign, when non-nil, enables the task-assignment control plane
	// with this policy/budget/redundancy/lease configuration.
	Assign *assign.Spec `json:"assign,omitempty"`
	// Limits, when non-nil, is the project's ingest admission policy:
	// sustained answers/sec, burst capacity, and lifetime answer quota.
	// Violations shed load with 429 + Retry-After instead of queueing.
	Limits *stream.Limits `json:"limits,omitempty"`
}

// DefaultSnapshotEvery is the WAL compaction cadence used when a project
// config leaves SnapshotEvery at 0 (matches the legacy flag default).
const DefaultSnapshotEvery = 256

// Validate fails fast on everything that would otherwise surface
// mid-boot or mid-request: unknown method, unknown task type, a
// method/type mismatch, and a bad assignment spec.
func (c Config) Validate() error {
	m, err := ti.GetMethod(c.Method)
	if err != nil {
		return err
	}
	typ, err := ParseTaskType(c.taskTypeOrDefault())
	if err != nil {
		return err
	}
	if c.Data == "" && !m.Capabilities().SupportsType(typ) {
		// With Data set the preloaded file decides the type; checked at
		// open time instead.
		return fmt.Errorf("tenant: %s does not support %s stores", m.Name(), typ)
	}
	if c.Choices < 0 {
		return fmt.Errorf("tenant: negative choices %d", c.Choices)
	}
	if c.Shards < 0 {
		return fmt.Errorf("tenant: negative shards %d", c.Shards)
	}
	if c.Assign != nil {
		if err := c.Assign.Validate(); err != nil {
			return err
		}
	}
	if c.Limits != nil {
		if c.Limits.RatePerSec < 0 {
			return fmt.Errorf("tenant: negative rate_per_sec %v", c.Limits.RatePerSec)
		}
		if c.Limits.Burst < 0 {
			return fmt.Errorf("tenant: negative burst %d", c.Limits.Burst)
		}
		if c.Limits.MaxAnswers < 0 {
			return fmt.Errorf("tenant: negative max_answers %d", c.Limits.MaxAnswers)
		}
		if c.Limits.Burst > 0 && c.Limits.RatePerSec == 0 {
			// stream.NewLimiter builds no limiter for rate 0, so a burst
			// on its own would be silently inert — reject it instead of
			// letting the operator believe a limit is in force.
			return fmt.Errorf("tenant: burst %d without rate_per_sec does nothing — set rate_per_sec or drop burst", c.Limits.Burst)
		}
	}
	return nil
}

func (c Config) taskTypeOrDefault() string {
	if c.TaskType == "" {
		return "decision"
	}
	return c.TaskType
}

func (c Config) choicesOrDefault() int {
	if c.Choices == 0 {
		return 2
	}
	return c.Choices
}

// snapshotEvery resolves the tri-state SnapshotEvery field for the
// persister: default cadence, explicit cadence, or disabled.
func (c Config) snapshotEvery() int {
	switch {
	case c.SnapshotEvery == 0:
		return DefaultSnapshotEvery
	case c.SnapshotEvery < 0:
		return 0 // persister: only on shutdown
	default:
		return c.SnapshotEvery
	}
}

// ParseTaskType maps the config/flag task-type names onto the dataset
// task families.
func ParseTaskType(s string) (dataset.TaskType, error) {
	switch s {
	case "decision":
		return dataset.Decision, nil
	case "single-choice":
		return dataset.SingleChoice, nil
	case "numeric":
		return dataset.Numeric, nil
	default:
		return 0, fmt.Errorf("tenant: unknown task type %q (valid: decision, single-choice, numeric)", s)
	}
}

// ValidateID checks a project id: the same single-safe-path-component
// rule the WAL namespacing enforces, because the id becomes the
// project's durable directory name.
func ValidateID(id string) error {
	if err := wal.ValidNamespace(id); err != nil {
		return fmt.Errorf("tenant: bad project id: %w", err)
	}
	return nil
}

// DecodeConfig parses one project config from JSON, rejecting unknown
// fields (a typoed knob must not silently become a default) and
// validating the result.
func DecodeConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("tenant: decode project config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DecodeProjects parses a boot-time project set: a JSON object mapping
// project id → config, with every id and config validated.
func DecodeProjects(data []byte) (map[string]Config, error) {
	var raw map[string]json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("tenant: decode projects file: %w", err)
	}
	out := make(map[string]Config, len(raw))
	for id, msg := range raw {
		if err := ValidateID(id); err != nil {
			return nil, err
		}
		if id == DefaultProjectID {
			return nil, fmt.Errorf("tenant: %q is reserved — the default project is configured by the daemon flags", id)
		}
		c, err := DecodeConfig(msg)
		if err != nil {
			return nil, fmt.Errorf("tenant: project %q: %w", id, err)
		}
		out[id] = c
	}
	return out, nil
}
