package tenant

import (
	"strings"
	"testing"

	"truthinference/internal/stream"
)

// TestValidateRejectsInertLimits pins the fail-fast contract on the
// limits block: a burst without a rate builds no limiter at all
// (stream.NewLimiter returns nil for rate 0), so accepting it would
// leave the operator believing a limit is in force when nothing is.
func TestValidateRejectsInertLimits(t *testing.T) {
	cfg := Config{Method: "MV", Limits: &stream.Limits{Burst: 500}}
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "burst") {
		t.Fatalf("burst-without-rate validated: err = %v", err)
	}
	// The exact config the validation exists for really is inert.
	if stream.NewLimiter(stream.Limits{Burst: 500}) != nil {
		t.Fatal("NewLimiter built a limiter for rate 0 — the validation may be obsolete")
	}

	// The legitimate shapes still validate.
	for _, limits := range []stream.Limits{
		{},                             // no limits at all
		{RatePerSec: 100, Burst: 500},  // rate limiting
		{MaxAnswers: 1000},             // quota only
		{RatePerSec: 10},               // rate with default burst
		{RatePerSec: 1, MaxAnswers: 5}, // both
	} {
		cfg := Config{Method: "MV", Limits: &limits}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("limits %+v rejected: %v", limits, err)
		}
	}
}
