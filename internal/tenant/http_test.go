package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"truthinference/internal/assign"
	"truthinference/internal/stream"
)

func startServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	r := NewRegistry("", nil)
	if err := r.Bootstrap(Config{Method: "MV"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() { ts.Close(); r.Close() })
	return r, ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, url, raw)
		}
	}
	return resp.StatusCode, m
}

// TestAdminLifecycleOverHTTP walks the documented admin flow: create →
// ingest → stats → delete, with the routing layer dispatching prefixed
// paths to the right tenant.
func TestAdminLifecycleOverHTTP(t *testing.T) {
	_, ts := startServer(t)

	status, created := doJSON(t, "POST", ts.URL+"/v1/admin/projects",
		`{"id":"polls","config":{"method":"MV","task_type":"decision","seed":3}}`)
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %v", status, created)
	}
	if created["id"] != "polls" {
		t.Fatalf("create response = %v", created)
	}

	// Ingest through the prefixed route, read back through it too.
	resp, err := http.Post(ts.URL+"/v1/projects/polls/ingest", "application/json",
		bytes.NewBufferString(`{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefixed ingest: HTTP %d", resp.StatusCode)
	}
	status, truth := doJSON(t, "GET", ts.URL+"/v1/projects/polls/truth/0", "")
	if status != http.StatusOK || truth["truth"].(float64) != 1 {
		t.Fatalf("prefixed truth: HTTP %d %v", status, truth)
	}

	// Per-project admin stats.
	status, info := doJSON(t, "GET", ts.URL+"/v1/admin/projects/polls", "")
	if status != http.StatusOK {
		t.Fatalf("admin get: HTTP %d", status)
	}
	if st, ok := info["stats"].(map[string]any); !ok || st["answers"].(float64) != 2 {
		t.Fatalf("admin stats = %v", info)
	}

	// Delete; the project's routes go away with it.
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/admin/projects/polls", ""); status != http.StatusOK {
		t.Fatalf("delete: HTTP %d", status)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/projects/polls/stats", ""); status != http.StatusNotFound {
		t.Fatalf("stats after delete: HTTP %d, want 404", status)
	}
}

func TestAdminErrorsOverHTTP(t *testing.T) {
	_, ts := startServer(t)

	// Routing to an unknown project.
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/projects/nope/stats", ""); status != http.StatusNotFound {
		t.Errorf("unknown project route: HTTP %d, want 404", status)
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/admin/projects/nope", ""); status != http.StatusNotFound {
		t.Errorf("delete unknown: HTTP %d, want 404", status)
	}
	// Malformed and invalid creates.
	for body, want := range map[string]int{
		`{`:                                     http.StatusBadRequest,
		`{"id":"x"}`:                            http.StatusBadRequest, // no config
		`{"id":"x","config":{"method":"Oops"}}`: http.StatusBadRequest,
		`{"id":"x","config":{"method":"MV","wat":1}}`: http.StatusBadRequest,
		`{"id":"UPPER","config":{"method":"MV"}}`:     http.StatusUnprocessableEntity,
		`{"id":"default","config":{"method":"MV"}}`:   http.StatusUnprocessableEntity,
	} {
		if status, _ := doJSON(t, "POST", ts.URL+"/v1/admin/projects", body); status != want {
			t.Errorf("create %q: HTTP %d, want %d", body, status, want)
		}
	}
	// Duplicate id → 409.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/admin/projects", `{"id":"dup","config":{"method":"MV"}}`); status != http.StatusCreated {
		t.Fatalf("first create: HTTP %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/admin/projects", `{"id":"dup","config":{"method":"MV"}}`); status != http.StatusConflict {
		t.Errorf("duplicate create: HTTP %d, want 409", status)
	}
	// Legacy healthz still answers on the default project.
	if status, m := doJSON(t, "GET", ts.URL+"/v1/healthz", ""); status != http.StatusOK || m["status"] != "ok" {
		t.Errorf("legacy healthz: HTTP %d %v", status, m)
	}
	// Per-project healthz answers through the prefix too.
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/projects/dup/healthz", ""); status != http.StatusOK {
		t.Errorf("prefixed healthz: HTTP %d", status)
	}
}

// TestDeleteWhileRequestInFlight pins the ErrClosed → 410 mapping: a
// handler held across a delete answers Gone for mutations instead of
// tearing anything.
func TestDeleteWhileRequestInFlight(t *testing.T) {
	r, ts := startServer(t)
	if _, err := r.Create("gone", Config{Method: "MV"}); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get("gone")
	handler := p.Handler() // an in-flight reference, as a mid-request goroutine would hold
	if err := r.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", ts.URL+"/v1/ingest", strings.NewReader(`{"answers":[{"task":0,"worker":0,"value":1}]}`))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusGone {
		t.Fatalf("ingest on deleted project: HTTP %d, want 410", rec.Code)
	}
}

// TestCompleteAfterDeleteIsGone: a worker holding a lease when its
// project is deleted gets 410 from POST /v1/complete — not a 422 that
// reads as "your answer was invalid".
func TestCompleteAfterDeleteIsGone(t *testing.T) {
	r, _ := startServer(t)
	if _, err := r.Create("gone2", Config{Method: "MV",
		Assign: &assign.Spec{Policy: "random", Redundancy: 1}}); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get("gone2")
	if _, err := p.Service().Ingest(stream.Batch{NumTasks: 2, NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	lease, err := p.Ledger().Assign(0)
	if err != nil {
		t.Fatal(err)
	}
	handler := p.Handler()
	if err := r.Delete("gone2"); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"lease_id":%d,"worker":0,"value":1}`, lease.ID)
	req := httptest.NewRequest("POST", "/v1/complete", strings.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusGone {
		t.Fatalf("complete on deleted project: HTTP %d (%s), want 410", rec.Code, rec.Body)
	}
}
