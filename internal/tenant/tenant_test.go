package tenant

import (
	"bytes"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"truthinference/internal/assign"
	"truthinference/internal/dataset"
	"truthinference/internal/stream"
	"truthinference/internal/stream/wal"
	"truthinference/internal/testutil"
)

func mustCreate(t *testing.T, r *Registry, id string, cfg Config) *Project {
	t.Helper()
	p, err := r.Create(id, cfg)
	if err != nil {
		t.Fatalf("create %s: %v", id, err)
	}
	return p
}

func TestRegistryCreateGetDelete(t *testing.T) {
	r := NewRegistry("", nil)
	defer r.Close()
	if err := r.Bootstrap(Config{Method: "MV"}); err != nil {
		t.Fatal(err)
	}
	p := mustCreate(t, r, "alpha", Config{Method: "Mean", TaskType: "numeric", Seed: 7})

	if got, ok := r.Get("alpha"); !ok || got != p {
		t.Fatalf("Get(alpha) = %v, %v", got, ok)
	}
	if p.Store().Name() != "alpha" || p.Store().TaskType().String() == "" {
		t.Errorf("store not named by project: %q", p.Store().Name())
	}
	if p.Service().Stats().Name != "alpha" {
		t.Errorf("per-tenant stats name = %q, want alpha", p.Service().Stats().Name)
	}

	infos := r.List()
	if len(infos) != 2 || infos[0].ID != DefaultProjectID || infos[1].ID != "alpha" {
		t.Fatalf("List = %+v", infos)
	}

	if err := r.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Fatal("alpha still registered after delete")
	}
	if err := r.Delete("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if err := r.Delete(DefaultProjectID); err == nil {
		t.Fatal("default project was deletable")
	}
}

func TestRegistryRejectsBadCreates(t *testing.T) {
	r := NewRegistry("", nil)
	defer r.Close()
	cases := []struct {
		id  string
		cfg Config
	}{
		{"ok-id", Config{Method: "Oops"}},                       // unknown method
		{"ok-id", Config{Method: "Mean"}},                       // Mean cannot serve decision
		{"ok-id", Config{Method: "MV", TaskType: "tabular"}},    // unknown type
		{"ok-id", Config{Method: "MV", Choices: -1}},            // negative choices
		{"ok-id", Config{Method: "MV", Shards: -1}},             // negative shards
		{"../up", Config{Method: "MV"}},                         // traversal id
		{"Has Space", Config{Method: "MV"}},                     // bad id chars
		{"", Config{Method: "MV"}},                              // empty id
		{DefaultProjectID, Config{Method: "MV"}},                // reserved
		{"ok-id", Config{Method: "MV", Assign: &assign.Spec{}}}, // no policy
		{"ok-id", Config{Method: "MV", Assign: &assign.Spec{Policy: "qasca"}}},
		{"ok-id", Config{Method: "MV", Assign: &assign.Spec{Policy: "random", Redundancy: -2}}},
		{"ok-id", Config{Method: "MV", Assign: &assign.Spec{Policy: "random", PriorQuality: 1.5}}},
	}
	for _, c := range cases {
		if _, err := r.Create(c.id, c.cfg); err == nil {
			t.Errorf("Create(%q, %+v) accepted", c.id, c.cfg)
		}
	}
	if len(r.List()) != 0 {
		t.Fatalf("rejected creates leaked projects: %+v", r.List())
	}
}

func TestRegistryDuplicateCreate(t *testing.T) {
	r := NewRegistry("", nil)
	defer r.Close()
	mustCreate(t, r, "p1", Config{Method: "MV"})
	if _, err := r.Create("p1", Config{Method: "MV"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
}

// TestManifestPersistsProjects checks the durable half of the registry:
// Create records the project in the manifest, Recover reopens it with
// its config intact, and Delete removes both the manifest entry and the
// namespace directory.
func TestManifestPersistsProjects(t *testing.T) {
	root := t.TempDir()
	r := NewRegistry(root, testutil.Logger(t))
	cfg := Config{Method: "MV", TaskType: "single-choice", Choices: 4, Seed: 9,
		Assign: &assign.Spec{Policy: "least-answered", Redundancy: 2}}
	p := mustCreate(t, r, "imgs", cfg)
	if !p.Durable() {
		t.Fatal("project under a durable registry is not durable")
	}
	if _, err := p.Service().Ingest(stream.Batch{NumTasks: 5, NumWorkers: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(root, testutil.Logger(t))
	defer r2.Close()
	if err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	p2, ok := r2.Get("imgs")
	if !ok {
		t.Fatal("manifest project not recovered")
	}
	if got := p2.Config(); got.Method != "MV" || got.TaskType != "single-choice" || got.Choices != 4 || got.Seed != 9 ||
		got.Assign == nil || got.Assign.Policy != "least-answered" {
		t.Fatalf("recovered config = %+v", got)
	}
	if tasks, workers, _ := p2.Store().Dims(); tasks != 5 || workers != 3 {
		t.Fatalf("recovered dims = %d×%d, want 5×3", tasks, workers)
	}
	if p2.Ledger() == nil {
		t.Fatal("recovered project lost its ledger")
	}

	dir := filepath.Join(root, "projects", "imgs")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("namespace dir missing before delete: %v", err)
	}
	if err := r2.Delete("imgs"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("namespace dir survived delete: %v", err)
	}
	// A third boot recovers nothing.
	r3 := NewRegistry(root, testutil.Logger(t))
	defer r3.Close()
	if err := r3.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := len(r3.List()); n != 0 {
		t.Fatalf("deleted project recovered: %d projects", n)
	}
}

// TestDeletedProjectRejectsMutations pins the lifecycle contract: after
// Delete, in-flight handles keep reading but Ingest/Refresh report
// stream.ErrClosed.
func TestDeletedProjectRejectsMutations(t *testing.T) {
	r := NewRegistry("", nil)
	defer r.Close()
	p := mustCreate(t, r, "doomed", Config{Method: "MV"})
	if _, err := p.Service().Ingest(stream.Batch{NumTasks: 2, NumWorkers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Service().Ingest(stream.Batch{NumTasks: 3}); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("ingest after delete: %v, want stream.ErrClosed", err)
	}
	if err := p.Service().Refresh(); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("refresh after delete: %v, want stream.ErrClosed", err)
	}
	// Reads still serve the last published state.
	if _, _, err := p.Service().Truths(); err != nil {
		t.Fatalf("read after delete: %v", err)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestCreateRefusesOrphanedNamespace: durable state under an id no
// manifest entry claims (half-deleted project, operator restore) must
// never be silently adopted as a "new" project's store.
func TestCreateRefusesOrphanedNamespace(t *testing.T) {
	root := t.TempDir()
	orphan := filepath.Join(root, "projects", "ghost")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "store.wal"), []byte("old data"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(root, testutil.Logger(t))
	defer r.Close()
	if _, err := r.Create("ghost", Config{Method: "MV"}); err == nil || !strings.Contains(err.Error(), "durable state") {
		t.Fatalf("Create adopted an orphaned namespace: %v", err)
	}
	// Removing the orphan frees the id.
	if err := os.RemoveAll(orphan); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, r, "ghost", Config{Method: "MV"})
}

// TestFailedCreateDoesNotBrickID: a durable create that fails after the
// WAL namespace was initialized must clean its artifacts up, so a retry
// of the same id (with a fixed config) succeeds instead of tripping the
// orphan guard forever.
func TestFailedCreateDoesNotBrickID(t *testing.T) {
	dataDir := t.TempDir()
	base := filepath.Join(dataDir, "crowd")
	if err := dataset.SaveFiles(base, testutil.Categorical(testutil.CrowdSpec{
		NumTasks: 4, NumWorkers: 3, NumChoices: 2, Redundancy: 2, Seed: 1,
	})); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	r := NewRegistry(root, testutil.Logger(t))
	defer r.Close()
	// Mean cannot serve the decision dataset; with Data set the mismatch
	// surfaces at open time, after wal.Open touched the namespace.
	if _, err := r.Create("retry", Config{Method: "Mean", Data: base}); err == nil {
		t.Fatal("mismatched preload accepted")
	}
	if _, err := os.Stat(filepath.Join(root, "projects", "retry")); !os.IsNotExist(err) {
		t.Fatalf("failed create left namespace artifacts: %v", err)
	}
	p := mustCreate(t, r, "retry", Config{Method: "MV", Data: base})
	if _, _, answers := p.Store().Dims(); answers == 0 {
		t.Fatal("retried create did not preload the dataset")
	}
}

// TestBudgetChargedAcrossRestart: a durable project's answer budget caps
// the store's total answers — after a restart the recovered answers are
// charged against it, so the cap cannot silently reset.
func TestBudgetChargedAcrossRestart(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Method: "MV",
		Assign: &assign.Spec{Policy: "random", Redundancy: 1, Budget: 3}}
	r := NewRegistry(root, testutil.Logger(t))
	p := mustCreate(t, r, "capped", cfg)
	if _, err := p.Service().Ingest(stream.Batch{
		Answers:  []dataset.Answer{{Task: 0, Worker: 0, Value: 1}, {Task: 1, Worker: 0, Value: 1}},
		NumTasks: 4, NumWorkers: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(root, testutil.Logger(t))
	defer r2.Close()
	if err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	p2, _ := r2.Get("capped")
	if st := p2.Ledger().Stats(); st.BudgetRemaining != 1 {
		t.Fatalf("recovered ledger: remaining=%d, want 1 (3 budget − 2 recovered answers)", st.BudgetRemaining)
	}
	// The accounting is continuous: a direct ingest mid-run spends
	// budget exactly like a recovered or routed answer.
	if _, err := p2.Service().Ingest(stream.Batch{
		Answers: []dataset.Answer{{Task: 2, Worker: 1, Value: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if st := p2.Ledger().Stats(); st.BudgetRemaining != 0 {
		t.Fatalf("after direct ingest: remaining=%d, want 0", st.BudgetRemaining)
	}
	if _, err := p2.Ledger().Assign(2); err != assign.ErrBudgetExhausted {
		t.Fatalf("assign beyond store-total budget: %v, want ErrBudgetExhausted", err)
	}
}

// TestLegacySnapshotRenamedToProjectID: snapshots written before the
// multi-tenant layer persisted the old hardcoded store name ("live");
// recovering one must rename the store to its project id so stats (and
// future snapshots) self-describe.
func TestLegacySnapshotRenamedToProjectID(t *testing.T) {
	root := t.TempDir()
	d, err := dataset.New("live", dataset.Decision, 2, 2, 2,
		[]dataset.Answer{{Task: 0, Worker: 0, Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteSnapshot(filepath.Join(root, "truthserve.snap"), d, 1); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(root, testutil.Logger(t))
	defer r.Close()
	if err := r.Bootstrap(Config{Method: "MV"}); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get(DefaultProjectID)
	if got := p.Service().Stats().Name; got != DefaultProjectID {
		t.Fatalf("recovered legacy store reports name %q, want %q", got, DefaultProjectID)
	}
	if _, _, answers := p.Store().Dims(); answers != 1 {
		t.Fatalf("legacy snapshot data lost: %d answers", answers)
	}
}

// TestRecoverWarnsAboutOrphans: a namespace directory no manifest entry
// claims is reported but not destroyed.
func TestRecoverWarnsAboutOrphans(t *testing.T) {
	root := t.TempDir()
	orphan := filepath.Join(root, "projects", "ghost")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "store.wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs bytes.Buffer
	r := NewRegistry(root, slog.New(slog.NewTextHandler(&logs, nil)))
	defer r.Close()
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "orphaned") {
		t.Fatalf("no orphan warning in %q", logs.String())
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatalf("orphan was destroyed: %v", err)
	}
}

func TestDecodeConfigErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      `nope`,
		"unknown field": `{"method":"MV","wat":1}`,
		"bad method":    `{"method":"Oops"}`,
		"bad duration":  `{"method":"MV","assign":{"policy":"random","lease_ttl":"soonish"}}`,
		"duration type": `{"method":"MV","assign":{"policy":"random","lease_ttl":true}}`,
	}
	for name, body := range cases {
		if _, err := DecodeConfig([]byte(body)); err == nil {
			t.Errorf("%s: DecodeConfig(%q) accepted", name, body)
		}
	}
	cfg, err := DecodeConfig([]byte(`{"method":"MV","assign":{"policy":"random","lease_ttl":"90s"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Assign.LeaseTTL; int64(got) != 90e9 {
		t.Fatalf("lease_ttl = %v, want 90s", got)
	}
}

func TestSnapshotEveryTriState(t *testing.T) {
	if got := (Config{}).snapshotEvery(); got != DefaultSnapshotEvery {
		t.Errorf("default snapshotEvery = %d", got)
	}
	if got := (Config{SnapshotEvery: -1}).snapshotEvery(); got != 0 {
		t.Errorf("disabled snapshotEvery = %d, want 0", got)
	}
	if got := (Config{SnapshotEvery: 7}).snapshotEvery(); got != 7 {
		t.Errorf("explicit snapshotEvery = %d, want 7", got)
	}
}
