package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"truthinference/internal/api"
	"truthinference/internal/assign"
	"truthinference/internal/stream"
)

// The HTTP-contract suite: every failure mode the stream, assign and
// tenant surfaces expose must answer with the shared error envelope
// {"error":{"code","message"}}, the documented status code, and — on
// every 429 — a parseable Retry-After header. The table runs through
// the full multi-tenant router, so the per-project rewrites are under
// test too.

// contractServer boots a registry with the projects the table needs:
//   - default:  MV, manual refresh, assignment enabled, pre-loaded so
//     every task sits at its redundancy cap except through the one held
//     lease (the 403 case completes it as the wrong worker; the 404
//     case asks for work when nothing is eligible);
//   - quota:    5-answer lifetime quota, empty;
//   - limited:  near-zero admission rate, bucket already in debt.
func contractServer(t *testing.T) (*httptest.Server, assign.Lease) {
	t.Helper()
	reg := NewRegistry("", nil)
	if err := reg.Bootstrap(Config{
		Method:        "MV",
		NoAutoRefresh: true,
		Assign:        &assign.Spec{Policy: "random", Redundancy: 3},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	post := func(path, body string, want int) []byte {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("setup POST %s → %d (want %d): %s", path, resp.StatusCode, want, data)
		}
		return data
	}
	post("/v1/admin/projects", `{"id":"quota","config":{"method":"MV","limits":{"max_answers":5}}}`, http.StatusCreated)
	post("/v1/admin/projects", `{"id":"limited","config":{"method":"MV","limits":{"rate_per_sec":0.000001,"burst":1}}}`, http.StatusCreated)
	// An iterative method with no epochs yet: its query plane's
	// model-derived relations are unavailable (409) until a refresh.
	post("/v1/admin/projects", `{"id":"dscold","config":{"method":"D&S","no_auto_refresh":true}}`, http.StatusCreated)

	// Default project, redundancy 3: fill tasks 0 and 1 to the cap, so
	// the setup lease deterministically lands on task 2 — then fill task
	// 2 too. Afterward every task is at or over its cap (answers +
	// outstanding lease) and no worker has anything eligible.
	var answers []string
	for task := 0; task < 2; task++ {
		for worker := 0; worker < 3; worker++ {
			answers = append(answers, fmt.Sprintf(`{"task":%d,"worker":%d,"value":%d}`, task, worker, (task+worker)%2))
		}
	}
	post("/v1/projects/default/ingest",
		`{"answers":[`+strings.Join(answers, ",")+`],"num_tasks":3,"num_workers":4}`, http.StatusOK)
	post("/v1/projects/default/refresh", "", http.StatusOK)
	resp, err := srv.Client().Get(srv.URL + "/v1/projects/default/assign?worker=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lease assign.Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("setup assign → %d, %v", resp.StatusCode, err)
	}
	if lease.Task != 2 {
		t.Fatalf("setup lease landed on task %d, want the only uncapped task 2", lease.Task)
	}
	post("/v1/projects/default/ingest",
		`{"answers":[{"task":2,"worker":0,"value":1},{"task":2,"worker":1,"value":0},{"task":2,"worker":2,"value":1}]}`,
		http.StatusOK)

	// Put the limited project's bucket in debt: burst 1, 2 answers — the
	// first request is admitted by borrowing and leaves it negative.
	post("/v1/projects/limited/ingest",
		`{"answers":[{"task":0,"worker":0,"value":1},{"task":1,"worker":0,"value":0}],"num_tasks":2,"num_workers":1}`,
		http.StatusOK)
	return srv, lease
}

func TestHTTPContract(t *testing.T) {
	srv, lease := contractServer(t)

	oneAnswerStream, err := stream.EncodeBatchStream([]stream.Batch{{
		NumTasks: 1, NumWorkers: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantRetry   bool // 429s must carry Retry-After
	}{
		// stream surface
		{"ingest malformed json", "POST", "/v1/projects/default/ingest", "application/json", `{"answers":`, http.StatusBadRequest, false},
		{"ingest unknown field", "POST", "/v1/projects/default/ingest", "application/json", `{"bogus":1}`, http.StatusBadRequest, false},
		{"ingest oversized body", "POST", "/v1/projects/default/ingest", "application/json",
			`{"answers":[` + strings.Repeat(`{"task":0,"worker":0,"value":1},`, 300000) + `{"task":0,"worker":0,"value":1}]}`,
			http.StatusRequestEntityTooLarge, false},
		{"truth non-integer id", "GET", "/v1/projects/default/truth/abc", "", "", http.StatusBadRequest, false},
		{"truth unknown task", "GET", "/v1/projects/default/truth/999", "", "", http.StatusNotFound, false},
		{"worker unknown id", "GET", "/v1/projects/default/worker/999", "", "", http.StatusNotFound, false},
		{"batch garbage", "POST", "/v1/projects/default/ingest-batch", "application/octet-stream", "not a batch stream", http.StatusBadRequest, false},
		{"batch empty", "POST", "/v1/projects/default/ingest-batch", "application/octet-stream", "", http.StatusBadRequest, false},
		{"ingest rate limited", "POST", "/v1/projects/limited/ingest", "application/json",
			`{"answers":[{"task":0,"worker":0,"value":1}]}`, http.StatusTooManyRequests, true},
		{"batch rate limited", "POST", "/v1/projects/limited/ingest-batch", "application/octet-stream",
			string(oneAnswerStream), http.StatusTooManyRequests, true},
		{"ingest over quota", "POST", "/v1/projects/quota/ingest", "application/json",
			`{"answers":[` + strings.Repeat(`{"task":0,"worker":0,"value":1},`, 5) + `{"task":0,"worker":0,"value":1}],"num_tasks":1,"num_workers":1}`,
			http.StatusTooManyRequests, true},

		// query surface
		{"query malformed body", "POST", "/v1/projects/default/query", "application/json", `{"plan":`, http.StatusBadRequest, false},
		{"query view and plan", "POST", "/v1/projects/default/query", "application/json",
			`{"view":"disagreement","plan":{"op":"scan","relation":"answers"}}`, http.StatusBadRequest, false},
		{"query unknown view", "POST", "/v1/projects/default/query", "application/json", `{"view":"profits"}`, http.StatusNotFound, false},
		{"query oversized body", "POST", "/v1/projects/default/query", "application/json",
			`{"view":"` + strings.Repeat("x", api.MaxAdminBody+1) + `"}`, http.StatusRequestEntityTooLarge, false},
		{"query unknown relation", "POST", "/v1/projects/default/query", "application/json",
			`{"plan":{"op":"scan","relation":"secrets"}}`, http.StatusUnprocessableEntity, false},
		{"query hostile plan", "POST", "/v1/projects/default/query", "application/json",
			`{"plan":{"op":"join","inputs":[{"op":"scan","relation":"answers"}]}}`, http.StatusUnprocessableEntity, false},
		{"query before first epoch", "POST", "/v1/projects/dscold/query", "application/json",
			`{"view":"worker-quality-drop"}`, http.StatusConflict, false},

		// assign surface
		{"assign bad worker param", "GET", "/v1/projects/default/assign?worker=abc", "", "", http.StatusBadRequest, false},
		{"assign nothing eligible", "GET", "/v1/projects/default/assign?worker=0", "", "", http.StatusNotFound, false},
		{"complete unknown lease", "POST", "/v1/projects/default/complete", "application/json",
			`{"lease_id":999999,"worker":1,"value":1}`, http.StatusGone, false},
		{"complete wrong worker", "POST", "/v1/projects/default/complete", "application/json",
			fmt.Sprintf(`{"lease_id":%d,"worker":2,"value":1}`, lease.ID), http.StatusForbidden, false},

		// tenant surface
		{"unknown project", "GET", "/v1/projects/nope/stats", "", "", http.StatusNotFound, false},
		{"admin unknown project", "GET", "/v1/admin/projects/nope", "", "", http.StatusNotFound, false},
		{"admin delete unknown", "DELETE", "/v1/admin/projects/nope", "", "", http.StatusNotFound, false},
		{"admin create duplicate", "POST", "/v1/admin/projects", "application/json",
			`{"id":"quota","config":{"method":"MV"}}`, http.StatusConflict, false},
		{"admin create no config", "POST", "/v1/admin/projects", "application/json", `{"id":"x"}`, http.StatusBadRequest, false},
		{"admin create bad method", "POST", "/v1/admin/projects", "application/json",
			`{"id":"x","config":{"method":"NOPE"}}`, http.StatusBadRequest, false},
		{"admin create oversized", "POST", "/v1/admin/projects", "application/json",
			`{"id":"x","config":{"method":"` + strings.Repeat("M", api.MaxAdminBody+1) + `"}}`, http.StatusRequestEntityTooLarge, false},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, data)
			}

			// Every error answers with the complete envelope and the code
			// the status maps to.
			var env api.ErrorEnvelope
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatalf("error body is not the envelope: %v: %s", err, data)
			}
			if want := api.CodeFor(resp.StatusCode); env.Error.Code != want {
				t.Fatalf("code %q, want %q (body %s)", env.Error.Code, want, data)
			}
			if env.Error.Message == "" {
				t.Fatalf("envelope has no message: %s", data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("error Content-Type %q is not JSON", ct)
			}

			retry := resp.Header.Get("Retry-After")
			if tc.wantRetry {
				secs, err := strconv.Atoi(retry)
				if err != nil || secs < 1 {
					t.Fatalf("429 Retry-After %q is not a positive integer", retry)
				}
			} else if retry != "" {
				t.Fatalf("unexpected Retry-After %q on a %d", retry, resp.StatusCode)
			}
		})
	}
}

// TestQueryPlaneThroughTenantRouter drives the happy path of the query
// endpoint across the per-project rewrite: the default project's held
// lease is visible through the leases relation, and its unlimited
// budget reports -1 through the canned spend view.
func TestQueryPlaneThroughTenantRouter(t *testing.T) {
	srv, lease := contractServer(t)
	post := func(body string) api.QueryResponse {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/v1/projects/default/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s → %d: %s", body, resp.StatusCode, data)
		}
		var out api.QueryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	leases := post(`{"plan":{"op":"scan","relation":"leases"}}`)
	if len(leases.Rows) != 1 || leases.Rows[0][0] != float64(lease.ID) || leases.Rows[0][1] != float64(lease.Task) {
		t.Fatalf("leases rows = %v, want the held lease %d on task %d", leases.Rows, lease.ID, lease.Task)
	}

	spend := post(`{"view":"spend-vs-budget"}`)
	if len(spend.Rows) != 1 || spend.Rows[0][0] != -1 {
		t.Fatalf("spend view = %v, want one row with unlimited (-1) budget", spend.Rows)
	}
	if outstanding := spend.Rows[0][3]; outstanding != 1 {
		t.Fatalf("spend view outstanding = %v, want the 1 held lease", outstanding)
	}

	// An aggregate over the pinned answer scan: 9 + 3 answers ingested
	// during setup, counted per task through the project router.
	counts := post(`{"plan":{"op":"aggregate","by":["task"],"aggs":[{"op":"count","as":"n"}],"input":{"op":"scan","relation":"answers"}}}`)
	if len(counts.Rows) != 3 {
		t.Fatalf("per-task counts = %v, want 3 tasks", counts.Rows)
	}
	for _, row := range counts.Rows {
		if row[1] != 3 {
			t.Fatalf("task %v holds %v answers, want 3", row[0], row[1])
		}
	}
}

// TestLegacyRoutesCarryDeprecation pins the migration contract: the
// unprefixed /v1/... alias still serves the default project but flags
// every response as deprecated with a pointer at the replacement, while
// the /v1/projects/default/... routes stay unflagged.
func TestLegacyRoutesCarryDeprecation(t *testing.T) {
	srv, _ := contractServer(t)
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /v1/stats → %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route response has no Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/projects/default/") {
		t.Fatalf("legacy route Link %q does not point at the successor routes", link)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/projects/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/projects/default/stats → %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("prefixed route wrongly flagged deprecated")
	}

	// The registry's own daemon-level liveness probe is not a legacy
	// alias and must not be flagged either.
	resp, err = srv.Client().Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("/v1/healthz → %d, Deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}
