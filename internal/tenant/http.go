package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The multi-tenant HTTP surface, mounted by cmd/truthserve:
//
//	POST   /v1/admin/projects        {"id":"p1","config":{...}}  create
//	GET    /v1/admin/projects        list every project + stats
//	GET    /v1/admin/projects/{id}   one project's stats
//	DELETE /v1/admin/projects/{id}   close + delete a project
//	*      /v1/projects/{id}/...     that project's full API (the same
//	                                 /v1/... routes the single-tenant
//	                                 daemon served)
//	*      /v1/...                   legacy unprefixed routes → the
//	                                 default project
//
// Project APIs are exactly the stream + assign handlers; the registry
// only rewrites /v1/projects/{id}/ingest to /v1/ingest and dispatches to
// the addressed project, so per-tenant behavior stays byte-identical to
// the single-tenant daemon.

// createRequest is the JSON shape of POST /v1/admin/projects.
type createRequest struct {
	ID     string          `json:"id"`
	Config json.RawMessage `json:"config"`
}

// Handler returns the registry's full HTTP surface.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admin/projects", r.handleCreate)
	mux.HandleFunc("GET /v1/admin/projects", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"projects": r.List()})
	})
	mux.HandleFunc("GET /v1/admin/projects/{id}", func(w http.ResponseWriter, req *http.Request) {
		p, ok := r.Get(req.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, req.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, p.Info())
	})
	mux.HandleFunc("DELETE /v1/admin/projects/{id}", r.handleDelete)
	mux.HandleFunc("/v1/projects/{id}/{rest...}", r.route)
	// Daemon-level liveness: answered by the registry itself (same shape
	// as the per-project probes), so /v1/healthz stays live even if the
	// default project is somehow absent.
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Everything else is a legacy unprefixed route against the default
	// project.
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		p, ok := r.Get(DefaultProjectID)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("tenant: no default project"))
			return
		}
		p.Handler().ServeHTTP(w, req)
	})
	return mux
}

// route dispatches /v1/projects/{id}/<rest> to project id's own handler
// as /v1/<rest>.
func (r *Registry) route(w http.ResponseWriter, req *http.Request) {
	p, ok := r.Get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, req.PathValue("id")))
		return
	}
	// Shallow-clone the request with the project prefix stripped, the
	// same way http.StripPrefix re-addresses a request.
	u := *req.URL
	u.Path = "/v1/" + req.PathValue("rest")
	u.RawPath = ""
	r2 := new(http.Request)
	*r2 = *req
	r2.URL = &u
	p.Handler().ServeHTTP(w, r2)
}

func (r *Registry) handleCreate(w http.ResponseWriter, req *http.Request) {
	var body createRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode create body: %w", err))
		return
	}
	if len(body.Config) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("tenant: create request has no config"))
		return
	}
	cfg, err := DecodeConfig(body.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := r.Create(body.ID, cfg)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrExists) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, p.Info())
}

func (r *Registry) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := r.Delete(id); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
