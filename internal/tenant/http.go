package tenant

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"truthinference/internal/api"
	"truthinference/internal/telemetry"
)

// The multi-tenant HTTP surface, mounted by cmd/truthserve:
//
//	POST   /v1/admin/projects        {"id":"p1","config":{...}}  create
//	GET    /v1/admin/projects        list every project + stats
//	GET    /v1/admin/projects/{id}   one project's stats
//	DELETE /v1/admin/projects/{id}   close + delete a project
//	*      /v1/projects/{id}/...     that project's full API (the same
//	                                 /v1/... routes the single-tenant
//	                                 daemon served)
//	*      /v1/...                   legacy unprefixed routes → the
//	                                 default project (DEPRECATED: every
//	                                 response carries a Deprecation
//	                                 header pointing at
//	                                 /v1/projects/default/...)
//
// Project APIs are exactly the stream + assign handlers; the registry
// only rewrites /v1/projects/{id}/ingest to /v1/ingest and dispatches to
// the addressed project, so per-tenant behavior stays byte-identical to
// the single-tenant daemon. Errors use the shared envelope from
// internal/api.

// deprecationNote is logged once per process, on the first legacy
// unprefixed request.
const deprecationNote = "tenant: unprefixed /v1/... routes are deprecated; use /v1/projects/default/... (the alias will be removed in a future release)"

// Handler returns the registry's full HTTP surface.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admin/projects", r.handleCreate)
	mux.HandleFunc("GET /v1/admin/projects", func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, map[string]any{"projects": r.List()})
	})
	mux.HandleFunc("GET /v1/admin/projects/{id}", func(w http.ResponseWriter, req *http.Request) {
		p, ok := r.Get(req.PathValue("id"))
		if !ok {
			api.Error(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, req.PathValue("id")))
			return
		}
		api.WriteJSON(w, http.StatusOK, p.Info())
	})
	mux.HandleFunc("DELETE /v1/admin/projects/{id}", r.handleDelete)
	mux.HandleFunc("/v1/projects/{id}/{rest...}", r.route)
	// Daemon-level liveness: answered by the registry itself (same shape
	// as the per-project probes), so /v1/healthz stays live even if the
	// default project is somehow absent.
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	// Readiness is distinct from liveness: it flips to 200 only after
	// boot-time recovery of every tenant namespace (Registry.SetReady),
	// so load balancers do not route traffic into a daemon still
	// replaying WALs.
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !r.Ready() {
			api.WriteJSON(w, http.StatusServiceUnavailable, api.Health{Status: "starting"})
			return
		}
		api.WriteJSON(w, http.StatusOK, api.Health{Status: "ready"})
	})
	// The scrape endpoint for the daemon-wide metrics registry.
	mux.Handle("GET /metrics", r.tel.Handler())
	// Everything else is a legacy unprefixed route against the default
	// project: still served, but flagged deprecated on every response
	// and logged once at first use.
	var deprecatedOnce sync.Once
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		deprecatedOnce.Do(func() { r.logger.Warn(deprecationNote) })
		// RFC 8594-style deprecation signal plus a human-readable
		// pointer at the replacement routes.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/projects/default/>; rel="successor-version"`)
		p, ok := r.Get(DefaultProjectID)
		if !ok {
			api.Error(w, http.StatusNotFound, errors.New("tenant: no default project"))
			return
		}
		p.Handler().ServeHTTP(w, req)
	})
	// Every request flows through the telemetry middleware: request-ID
	// stamping (minted or accepted from X-Request-ID), per-route/tenant
	// count + latency, and slow-request logging above r.SlowRequest.
	return telemetry.Middleware(mux, r.httpMetric, r.logger, r.SlowRequest, r.routeLabel)
}

// routeLabel classifies a request into bounded route and tenant label
// values for the HTTP metrics. Routes come from a fixed vocabulary (no
// raw paths — task ids and worker ids would explode cardinality) and
// the tenant label only carries ids of live projects, so a scan of
// random project names cannot mint series.
func (r *Registry) routeLabel(req *http.Request) (route, tenant string) {
	path := req.URL.Path
	switch {
	case path == "/metrics":
		return "/metrics", ""
	case path == "/v1/healthz":
		return "/v1/healthz", ""
	case path == "/v1/readyz":
		return "/v1/readyz", ""
	case path == "/v1/admin/projects":
		return "/v1/admin/projects", ""
	case strings.HasPrefix(path, "/v1/admin/projects/"):
		return "/v1/admin/projects/{id}", ""
	case strings.HasPrefix(path, "/v1/projects/"):
		rest := strings.TrimPrefix(path, "/v1/projects/")
		id, sub, _ := strings.Cut(rest, "/")
		return "/v1/projects/{id}" + subRoute(sub), r.tenantLabel(id)
	case strings.HasPrefix(path, "/v1/"):
		// Legacy unprefixed alias of the default project.
		return "/v1" + subRoute(strings.TrimPrefix(path, "/v1/")), DefaultProjectID
	default:
		return "/other", ""
	}
}

// tenantLabel returns id when it names a live project, else "unknown",
// keeping the tenant label's cardinality bounded by real projects.
func (r *Registry) tenantLabel(id string) string {
	if _, ok := r.Get(id); ok {
		return id
	}
	return "unknown"
}

// subRoute maps a project-relative sub-path onto the fixed route
// vocabulary of the per-project API.
func subRoute(sub string) string {
	head, _, _ := strings.Cut(sub, "/")
	switch head {
	case "ingest", "ingest-batch", "refresh", "truths", "stats",
		"healthz", "assign", "complete", "assignstats", "query":
		return "/" + head
	case "truth":
		return "/truth/{task}"
	case "worker":
		return "/worker/{id}"
	default:
		return "/other"
	}
}

// route dispatches /v1/projects/{id}/<rest> to project id's own handler
// as /v1/<rest>.
func (r *Registry) route(w http.ResponseWriter, req *http.Request) {
	p, ok := r.Get(req.PathValue("id"))
	if !ok {
		api.Error(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, req.PathValue("id")))
		return
	}
	// Shallow-clone the request with the project prefix stripped, the
	// same way http.StripPrefix re-addresses a request.
	u := *req.URL
	u.Path = "/v1/" + req.PathValue("rest")
	u.RawPath = ""
	r2 := new(http.Request)
	*r2 = *req
	r2.URL = &u
	p.Handler().ServeHTTP(w, r2)
}

func (r *Registry) handleCreate(w http.ResponseWriter, req *http.Request) {
	var body api.CreateProjectRequest
	if !api.DecodeJSON(w, req, api.MaxAdminBody, &body) {
		return
	}
	if len(body.Config) == 0 {
		api.Error(w, http.StatusBadRequest, errors.New("tenant: create request has no config"))
		return
	}
	cfg, err := DecodeConfig(body.Config)
	if err != nil {
		api.Error(w, http.StatusBadRequest, err)
		return
	}
	p, err := r.Create(body.ID, cfg)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrExists) {
			status = http.StatusConflict
		}
		api.Error(w, status, err)
		return
	}
	api.WriteJSON(w, http.StatusCreated, p.Info())
}

func (r *Registry) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := r.Delete(id); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		api.Error(w, status, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"deleted": id})
}
