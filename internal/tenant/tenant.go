// Package tenant is the multi-tenant layer of the serving stack: a
// Registry owns N independent crowdsourcing projects, each with its own
// answer store (own shard count), inference service (own method, seed
// and epoch configuration), optional assignment ledger (own policy and
// budget) and — when the registry is durable — its own write-ahead log
// namespace. Projects are created, listed and deleted at runtime through
// the admin API (http.go) and addressed as /v1/projects/{id}/...; the
// legacy unprefixed routes keep working against a reserved default
// project, so a single-project deployment upgrades in place.
//
// # Lock discipline
//
// The registry's RWMutex guards only the id → *Project map (plus the
// pending-id reservation set); every per-project structure (store
// shards, service epochs, ledger leases) keeps its own locks, and the
// slow halves of admin operations — WAL recovery and dataset preload on
// create, the epoch drain and namespace removal on delete — run outside
// the lock behind an id reservation, with manifest writes serialized by
// their own mutex. Request routing therefore costs one short RLock of
// the registry and then contends only within the addressed project —
// tenants never serialize against each other's traffic, which is the
// isolation property all future scale work (quotas, eviction,
// placement) builds on.
//
// # Durability layout
//
//	<root>/truthserve.{wal,snap}        the default project (the exact
//	                                    layout the single-tenant daemon
//	                                    used, so old state recovers)
//	<root>/projects.json                the manifest: id → Config for
//	                                    every non-default project
//	<root>/projects/<id>/store.{wal,snap}  one namespace per project
//
// Recover opens every manifest project at boot (replaying each WAL on
// top of its snapshot) and warns about orphaned namespaces no manifest
// entry claims.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ti "truthinference"
	"truthinference/internal/assign"
	"truthinference/internal/dataset"
	"truthinference/internal/query"
	"truthinference/internal/stream"
	"truthinference/internal/stream/wal"
	"truthinference/internal/telemetry"
)

// DefaultProjectID is the reserved id of the project the legacy
// unprefixed routes (/v1/ingest, /v1/assign, ...) are served by. It is
// created from the daemon's legacy flags and cannot be deleted.
const DefaultProjectID = "default"

// ErrNotFound is returned when a project id is not registered.
var ErrNotFound = errors.New("tenant: no such project")

// ErrExists is returned by Create for an already-registered id.
var ErrExists = errors.New("tenant: project id already exists")

// Project is one tenant: a store, a serving service, an optional
// assignment ledger and an optional durability layer, wired exactly like
// the single-tenant daemon used to wire its globals.
type Project struct {
	id      string
	cfg     Config
	store   *stream.Store
	svc     *stream.Service
	persist *wal.Persister
	ledger  *assign.Ledger
	handler http.Handler

	closeOnce sync.Once
	closeErr  error
}

// ID returns the project id.
func (p *Project) ID() string { return p.id }

// Config returns the project's configuration.
func (p *Project) Config() Config { return p.cfg }

// Service returns the project's inference service.
func (p *Project) Service() *stream.Service { return p.svc }

// Store returns the project's answer store.
func (p *Project) Store() *stream.Store { return p.store }

// Ledger returns the project's assignment ledger (nil when the project
// has no assignment control plane).
func (p *Project) Ledger() *assign.Ledger { return p.ledger }

// Handler returns the project's HTTP API: the streaming endpoints plus,
// when assignment is configured, the ledger endpoints.
func (p *Project) Handler() http.Handler { return p.handler }

// Durable reports whether the project has a write-ahead log attached.
func (p *Project) Durable() bool { return p.persist != nil }

// Close drains the project the way the single-tenant daemon drained on
// SIGTERM: finish the in-flight epoch and flush the WAL (Service.Close),
// compact a final snapshot, and close the log. Idempotent; later calls
// return the first result.
func (p *Project) Close() error {
	p.closeOnce.Do(func() {
		var errs []error
		if err := p.svc.Close(); err != nil {
			errs = append(errs, err)
		}
		if p.persist != nil {
			if err := p.persist.Snapshot(); err != nil {
				errs = append(errs, fmt.Errorf("tenant: final snapshot of %s: %w", p.id, err))
			}
			if err := p.persist.Close(); err != nil {
				errs = append(errs, fmt.Errorf("tenant: close WAL of %s: %w", p.id, err))
			}
		}
		p.closeErr = errors.Join(errs...)
	})
	return p.closeErr
}

// Info is one project's row in the admin listing: identity, serving
// stats, and the assignment stats when a ledger is configured.
type Info struct {
	ID      string        `json:"id"`
	Durable bool          `json:"durable"`
	Stats   stream.Stats  `json:"stats"`
	Assign  *assign.Stats `json:"assign,omitempty"`
}

// Info returns the project's live stats row.
func (p *Project) Info() Info {
	info := Info{ID: p.id, Durable: p.persist != nil, Stats: p.svc.Stats()}
	if p.ledger != nil {
		st := p.ledger.Stats()
		info.Assign = &st
	}
	return info
}

// openProject builds one tenant from its config. base is the durable
// file base path ("" = not durable; the registry namespaces it per
// project), and tel is the registry's shared metrics registry (nil =
// uninstrumented) the project's per-tenant instrument bundles register
// on. The wiring mirrors the original single-tenant daemon: fail fast on
// config errors, recover (or build) the store, attach the service,
// publish an initial result when the store has state, and mount the
// ledger endpoints next to the streaming API.
func openProject(id string, cfg Config, base string, logger *slog.Logger, tel *telemetry.Registry) (*Project, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := ti.GetMethod(cfg.Method)
	if err != nil {
		return nil, err
	}
	logger = logger.With("tenant", id)

	// fresh builds the store the project starts from when there is no
	// durable state to recover. Deterministic across restarts — the WAL
	// replays on top of it.
	fresh := func() (*stream.Store, error) {
		if cfg.Data != "" {
			d, err := ti.LoadDataset(cfg.Data)
			if err != nil {
				return nil, fmt.Errorf("tenant: preload %s: %w", id, err)
			}
			d.Name = id // stores are named by project so stats self-describe
			logger.Info("preloaded dataset", "path", cfg.Data,
				"tasks", d.NumTasks, "workers", d.NumWorkers, "answers", len(d.Answers))
			return stream.NewStoreAt(d, 1, cfg.Shards), nil
		}
		typ, err := ParseTaskType(cfg.taskTypeOrDefault())
		if err != nil {
			return nil, err
		}
		return stream.NewStoreN(id, typ, cfg.choicesOrDefault(), cfg.Shards)
	}

	var store *stream.Store
	var persist *wal.Persister
	if base != "" {
		p, rec, err := wal.Open(base, fresh, wal.Options{
			SnapshotEvery: cfg.snapshotEvery(),
			Shards:        cfg.Shards,
			Metrics:       wal.NewMetrics(tel, id),
		})
		if err != nil {
			return nil, fmt.Errorf("tenant: recover %s: %w", id, err)
		}
		if rec.TailErr != nil {
			logger.Warn("WAL tail damaged, recovered the consistent prefix", "err", rec.TailErr)
		}
		tasks, workers, answers := rec.Store.Dims()
		logger.Info("recovered store",
			"version", rec.Store.Version(), "snapshot_version", rec.SnapshotVersion,
			"replayed", rec.Replayed, "tasks", tasks, "workers", workers, "answers", answers)
		// Snapshots written before the multi-tenant layer persisted the
		// old hardcoded store name; rename so stats (and every future
		// snapshot) self-describe with the project id.
		rec.Store.SetName(id)
		store, persist = rec.Store, p
	} else if store, err = fresh(); err != nil {
		return nil, err
	}
	// From here on, any failure must release the WAL file handle.
	fail := func(err error) (*Project, error) {
		if persist != nil {
			persist.Close()
		}
		return nil, err
	}

	par := cfg.Parallelism
	if par == 0 {
		par = ti.AutoParallelism
	}
	svcCfg := stream.Config{
		Method:      m,
		Options:     ti.Options{Seed: cfg.Seed, MaxIterations: cfg.MaxIter, Parallelism: par},
		ColdStart:   cfg.ColdStart,
		AutoRefresh: !cfg.NoAutoRefresh,
		Metrics:     stream.NewMetrics(tel, id, m.Name()),
	}
	if persist != nil {
		svcCfg.Persist = persist
	}
	if cfg.Limits != nil {
		svcCfg.Limits = *cfg.Limits
	}
	svc, err := stream.NewService(store, svcCfg)
	if err != nil {
		return fail(err)
	}
	if store.Version() > 0 {
		// Preloaded or recovered state: publish an initial result so the
		// API serves immediately instead of 409ing until the first batch.
		if err := svc.Refresh(); err != nil {
			svc.Close()
			return fail(fmt.Errorf("tenant: initial inference of %s: %w", id, err))
		}
		st := svc.Stats()
		logger.Info("initial epoch published",
			"method", st.Method, "iterations", st.Iterations, "converged", st.Converged)
	}

	p := &Project{id: id, cfg: cfg, store: store, svc: svc, persist: persist}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if cfg.Assign != nil {
		ledger, err := cfg.Assign.Ledger(svc, cfg.Seed, assign.NewMetrics(tel, id))
		if err != nil {
			svc.Close()
			return fail(err)
		}
		// Completed assignments land in the store as one-answer batches;
		// Complete holds the ledger lock across the ingest so a lease is
		// consumed exactly when its answer is committed. A delivery that
		// loses the race with project deletion is marked so the HTTP
		// layer answers 410 like every other mutation on a deleted
		// project.
		assignAPI := assign.Handler(ledger, func(task, worker int, value float64) (uint64, error) {
			v, err := svc.Ingest(stream.Batch{Answers: []dataset.Answer{
				{Task: task, Worker: worker, Value: value},
			}})
			if errors.Is(err, stream.ErrClosed) {
				err = fmt.Errorf("%w: %v", assign.ErrStoreClosed, err)
			}
			return v, err
		})
		for _, pattern := range []string{"GET /v1/assign", "POST /v1/complete", "GET /v1/assignstats"} {
			mux.Handle(pattern, assignAPI)
		}
		p.ledger = ledger
		logger.Info("assignment enabled",
			"policy", ledger.Policy().Name(), "redundancy", ledger.Stats().Redundancy,
			"budget", cfg.Assign.Budget, "lease_ttl", time.Duration(cfg.Assign.LeaseTTL))
	}
	// The relational query plane is mounted on every project; without a
	// ledger the lease/budget relations just report as unavailable. The
	// typed-nil dance keeps the query.Ledger interface genuinely nil.
	var ql query.Ledger
	if p.ledger != nil {
		ql = p.ledger
	}
	mux.Handle("POST /v1/query", query.NewHandler(svc, ql, query.NewMetrics(tel, id)))
	p.handler = mux
	logger.Info("serving", "method", m.Name(), "warm_start", !cfg.ColdStart,
		"auto_refresh", !cfg.NoAutoRefresh, "shards", store.Shards(), "durable", persist != nil)
	return p, nil
}

// Registry owns the live projects of one daemon, plus the daemon-wide
// telemetry registry every project's instrument bundles register on.
type Registry struct {
	root   string // durable root directory; "" = memory-only
	logger *slog.Logger

	tel        *telemetry.Registry
	httpMetric *telemetry.HTTPMetrics
	readyGauge *telemetry.Gauge
	ready      atomic.Bool

	// SlowRequest is the latency above which the HTTP middleware logs a
	// request as slow (0 disables). Set it before calling Handler.
	SlowRequest time.Duration

	mu       sync.RWMutex
	projects map[string]*Project
	// pending reserves ids whose slow work (WAL recovery on create,
	// drain + namespace removal on delete) runs outside the lock, so a
	// concurrent create of the same id cannot collide on disk — and a
	// half-deleted namespace can never be resurrected as a "new" project.
	pending map[string]struct{}
	closed  bool

	// manifestMu serializes read-modify-write cycles on projects.json
	// (manifest writes happen outside r.mu so slow admin operations do
	// not stall routing).
	manifestMu sync.Mutex
}

// NewRegistry builds an empty registry. root is the durable root
// directory (the legacy -wal-dir; "" disables durability for every
// project). logger receives structured operational logging; nil
// discards it.
func NewRegistry(root string, logger *slog.Logger) *Registry {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tel := telemetry.NewRegistry()
	return &Registry{
		root:       root,
		logger:     logger,
		tel:        tel,
		httpMetric: telemetry.NewHTTPMetrics(tel, "truthserve"),
		readyGauge: tel.Gauge("truthserve_ready",
			"1 once boot-time recovery of every tenant namespace completed.").With(),
		projects: map[string]*Project{},
		pending:  map[string]struct{}{},
	}
}

// Telemetry returns the daemon-wide metrics registry (for mounting the
// scrape on auxiliary listeners, e.g. the pprof debug mux).
func (r *Registry) Telemetry() *telemetry.Registry { return r.tel }

// SetReady marks boot-time recovery complete: GET /v1/readyz starts
// answering 200 and the truthserve_ready gauge flips to 1. The daemon
// calls it once Bootstrap, Recover, and boot-file creates have finished.
func (r *Registry) SetReady() {
	r.ready.Store(true)
	r.readyGauge.Set(1)
}

// Ready reports whether SetReady has been called.
func (r *Registry) Ready() bool { return r.ready.Load() }

// Durable reports whether the registry persists project state.
func (r *Registry) Durable() bool { return r.root != "" }

// manifestPath is the on-disk index of non-default projects.
func (r *Registry) manifestPath() string { return filepath.Join(r.root, "projects.json") }

// projectsDir holds one namespace directory per non-default project.
func (r *Registry) projectsDir() string { return filepath.Join(r.root, "projects") }

// baseFor returns the durable file base for a project ("" when the
// registry is memory-only), creating its namespace directory. The
// default project keeps the exact single-tenant layout so pre-existing
// state recovers unchanged.
func (r *Registry) baseFor(id string) (string, error) {
	if r.root == "" {
		return "", nil
	}
	if id == DefaultProjectID {
		if err := os.MkdirAll(r.root, 0o755); err != nil {
			return "", err
		}
		return filepath.Join(r.root, "truthserve"), nil
	}
	dir, err := wal.NamespaceDir(r.projectsDir(), id)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, "store"), nil
}

// Bootstrap creates the default project from cfg. Unlike Create it does
// not touch the manifest — the default project is defined by the
// daemon's flags on every boot, never by persisted config, so legacy
// deployments keep their "flags win" behavior.
func (r *Registry) Bootstrap(cfg Config) error {
	base, err := r.baseFor(DefaultProjectID)
	if err != nil {
		return err
	}
	p, err := openProject(DefaultProjectID, cfg, base, r.logger, r.tel)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.projects[DefaultProjectID]; ok {
		p.Close()
		return ErrExists
	}
	r.projects[DefaultProjectID] = p
	return nil
}

// reserve claims id for a slow create/delete. It fails if the id is
// live, already reserved, or the registry is closed.
func (r *Registry) reserve(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("tenant: registry is closed")
	}
	if _, ok := r.projects[id]; ok {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	if _, ok := r.pending[id]; ok {
		return fmt.Errorf("%w: %q (operation in progress)", ErrExists, id)
	}
	r.pending[id] = struct{}{}
	return nil
}

// release drops a reservation, optionally publishing a project in the
// same critical section. If the registry was closed while the slow
// create ran, the project is closed instead of published.
func (r *Registry) release(id string, publish *Project) {
	r.mu.Lock()
	closed := r.closed
	if publish != nil && !closed {
		r.projects[id] = publish
	}
	delete(r.pending, id)
	r.mu.Unlock()
	if publish != nil && closed {
		publish.Close()
	}
}

// Create registers a new project under id and, when durable, records it
// in the manifest so the next boot recovers it. The slow work (WAL
// recovery, dataset preload, initial inference) runs outside the
// registry lock — only the id reservation and the final publish take
// it, so an expensive create never stalls other tenants' routing.
func (r *Registry) Create(id string, cfg Config) (*Project, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if id == DefaultProjectID {
		return nil, fmt.Errorf("tenant: %q is reserved for the legacy default project", id)
	}
	if err := r.reserve(id); err != nil {
		return nil, err
	}
	// Refuse to adopt an orphaned namespace: durable state under this id
	// that no manifest entry claims (a half-deleted project, or an
	// operator restore) must never silently become the "new" project's
	// store — wal.Open would recover the old answers under the new
	// config. The in-memory reservation below covers the same race
	// within one process lifetime; this check covers restarts.
	if r.root != "" {
		orphans, err := wal.Namespaces(r.projectsDir())
		if err != nil {
			// Cannot prove the namespace is clean — refuse rather than
			// risk adopting a previous tenant's data.
			r.release(id, nil)
			return nil, fmt.Errorf("tenant: cannot scan %s for orphaned state: %w", r.projectsDir(), err)
		}
		for _, o := range orphans {
			if o == id {
				r.release(id, nil)
				return nil, fmt.Errorf("tenant: namespace %q already holds durable state no manifest entry claims — remove %s to reuse the id",
					id, filepath.Join(r.projectsDir(), id))
			}
		}
	}
	// abort cleans up a failed create: the orphan check above proved the
	// namespace held no durable state before this attempt, so whatever
	// this attempt wrote (an empty WAL, a final snapshot from the abort
	// close) is removed — otherwise the failed create would trip the
	// orphan guard forever and brick the id.
	abort := func(err error) (*Project, error) {
		if r.root != "" {
			if dir, derr := wal.NamespaceDir(r.projectsDir(), id); derr == nil {
				os.RemoveAll(dir)
			}
		}
		r.release(id, nil)
		return nil, err
	}
	base, err := r.baseFor(id)
	if err != nil {
		return abort(err)
	}
	p, err := openProject(id, cfg, base, r.logger, r.tel)
	if err != nil {
		return abort(err)
	}
	if r.root != "" {
		if err := r.writeManifest(func(m map[string]Config) { m[id] = cfg }); err != nil {
			p.Close()
			return abort(err)
		}
	}
	r.release(id, p)
	return p, nil
}

// Delete closes a project, removes it from the manifest, and deletes its
// durable namespace. The default project cannot be deleted. In-flight
// requests against the project finish against its closed service
// (mutations get ErrClosed → HTTP 410). The drain and directory removal
// run outside the registry lock; the id stays reserved meanwhile, and —
// if removing the durable state fails — stays reserved for the
// registry's lifetime, so a later create of the same id can never boot
// on top of the half-deleted project's data.
func (r *Registry) Delete(id string) error {
	if id == DefaultProjectID {
		return fmt.Errorf("tenant: the default project cannot be deleted")
	}
	r.mu.Lock()
	p, ok := r.projects[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(r.projects, id) // routing stops now
	r.pending[id] = struct{}{}
	r.mu.Unlock()

	// A close error does not abort the delete (the operator asked for
	// the project to go away).
	if err := p.Close(); err != nil {
		r.logger.Warn("close during delete", "tenant", id, "err", err)
	}
	if r.root != "" {
		if err := r.writeManifest(func(m map[string]Config) { delete(m, id) }); err != nil {
			return err // id stays reserved
		}
		if dir, err := wal.NamespaceDir(r.projectsDir(), id); err == nil {
			if err := os.RemoveAll(dir); err != nil {
				return fmt.Errorf("tenant: remove durable state of %q (id stays reserved): %w", id, err)
			}
		}
	}
	r.release(id, nil)
	return nil
}

// Get returns a live project by id.
func (r *Registry) Get(id string) (*Project, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.projects[id]
	return p, ok
}

// List returns every live project's info row, sorted by id (the default
// project first).
func (r *Registry) List() []Info {
	r.mu.RLock()
	projects := make([]*Project, 0, len(r.projects))
	for _, p := range r.projects {
		projects = append(projects, p)
	}
	r.mu.RUnlock()
	sort.Slice(projects, func(i, j int) bool {
		if (projects[i].id == DefaultProjectID) != (projects[j].id == DefaultProjectID) {
			return projects[i].id == DefaultProjectID
		}
		return projects[i].id < projects[j].id
	})
	out := make([]Info, len(projects))
	for i, p := range projects {
		out[i] = p.Info()
	}
	return out
}

// Recover opens every project the manifest records (replaying each WAL
// namespace on top of its snapshot) and warns about orphaned namespaces
// the manifest does not claim. A memory-only registry recovers nothing.
func (r *Registry) Recover() error {
	if r.root == "" {
		return nil
	}
	manifest, err := r.readManifest()
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(manifest))
	for id := range manifest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cfg := manifest[id]
		base, err := r.baseFor(id)
		if err != nil {
			return err
		}
		p, err := openProject(id, cfg, base, r.logger, r.tel)
		if err != nil {
			return fmt.Errorf("tenant: recover project %q: %w", id, err)
		}
		r.mu.Lock()
		if _, ok := r.projects[id]; ok {
			r.mu.Unlock()
			p.Close()
			continue
		}
		r.projects[id] = p
		r.mu.Unlock()
	}
	// Orphan check: durable namespaces no manifest entry claims are left
	// in place (they may be a half-deleted project or an operator
	// restore) but loudly reported.
	if spaces, err := wal.Namespaces(r.projectsDir()); err == nil {
		for _, id := range spaces {
			if _, ok := manifest[id]; !ok {
				r.logger.Warn("orphaned durable namespace (no manifest entry) — not recovered", "namespace", id)
			}
		}
	}
	return nil
}

// Close drains every project concurrently (each close finishes its
// in-flight epoch, compacts a final snapshot and closes its WAL — the
// per-tenant fan-out of the daemon's graceful SIGTERM drain) and returns
// the joined errors.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	projects := make([]*Project, 0, len(r.projects))
	for _, p := range r.projects {
		projects = append(projects, p)
	}
	r.mu.Unlock()

	errs := make([]error, len(projects))
	var wg sync.WaitGroup
	for i, p := range projects {
		wg.Add(1)
		go func(i int, p *Project) {
			defer wg.Done()
			if err := p.Close(); err != nil {
				errs[i] = fmt.Errorf("tenant %s: %w", p.id, err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// readManifest loads the manifest, treating a missing file as empty.
func (r *Registry) readManifest() (map[string]Config, error) {
	data, err := os.ReadFile(r.manifestPath())
	if os.IsNotExist(err) {
		return map[string]Config{}, nil
	}
	if err != nil {
		return nil, err
	}
	var m map[string]Config
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tenant: manifest %s: %w", r.manifestPath(), err)
	}
	if m == nil {
		m = map[string]Config{}
	}
	return m, nil
}

// writeManifest applies mutate to the on-disk manifest and writes it
// back atomically (tmp + rename); manifestMu serializes the
// read-modify-write cycle.
func (r *Registry) writeManifest(mutate func(map[string]Config)) error {
	r.manifestMu.Lock()
	defer r.manifestMu.Unlock()
	m, err := r.readManifest()
	if err != nil {
		return err
	}
	mutate(m)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.root, 0o755); err != nil {
		return err
	}
	tmp := r.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, r.manifestPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
