package tenant

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// TestReadyzGatesOnRecovery pins the readiness contract: /v1/readyz
// answers 503 until SetReady (boot recovery done), then 200 — while
// /v1/healthz is 200 throughout (liveness, not readiness).
func TestReadyzGatesOnRecovery(t *testing.T) {
	r, ts := startServer(t)

	status, body := doJSON(t, "GET", ts.URL+"/v1/healthz", "")
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz before ready: HTTP %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/readyz", "")
	if status != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("readyz before ready: HTTP %d %v, want 503 starting", status, body)
	}

	r.SetReady()
	status, body = doJSON(t, "GET", ts.URL+"/v1/readyz", "")
	if status != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after ready: HTTP %d %v, want 200 ready", status, body)
	}
	if !r.Ready() {
		t.Fatal("Ready() = false after SetReady")
	}
}

// TestMetricsScrapeEndToEnd drives real traffic through the full router
// and asserts the scrape carries per-tenant series from every
// instrumented plane plus the HTTP middleware's own counters.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	r, ts := startServer(t)
	r.SetReady()

	// D&S rather than MV: an EM method, so Refresh runs a real epoch
	// (incremental MV folds at ingest and skips the epoch entirely).
	if status, body := doJSON(t, "POST", ts.URL+"/v1/admin/projects",
		`{"id":"scraped","config":{"method":"D&S","task_type":"decision","seed":3}}`); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d %v", status, body)
	}
	// Ingest over HTTP so the admission path (where the admitted counter
	// lives) is exercised, then force a synchronous epoch.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/projects/scraped/ingest",
		`{"answers":[{"task":0,"worker":0,"value":1},{"task":0,"worker":1,"value":0},
		             {"task":1,"worker":0,"value":1},{"task":1,"worker":2,"value":1}]}`); status != http.StatusOK {
		t.Fatalf("ingest: HTTP %d %v", status, body)
	}
	p, _ := r.Get("scraped")
	if err := p.Service().Refresh(); err != nil {
		t.Fatal(err)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/projects/scraped/query",
		`{"view":"disagreement"}`); status != http.StatusOK {
		t.Fatalf("query: HTTP %d %v", status, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	scrape := string(raw)

	wantRE := []string{
		`truthserve_ready 1`,
		`truthserve_ingest_answers_admitted_total\{tenant="scraped"\} [1-9]`,
		`truthserve_epochs_total\{tenant="scraped",method="[^"]+"\} [1-9]`,
		`truthserve_epoch_seconds_count\{tenant="scraped",method="[^"]+"\} [1-9]`,
		`truthserve_query_total\{tenant="scraped",view="disagreement"\} 1`,
		`truthserve_http_requests_total\{route="/v1/projects/\{id\}/query",method="POST",status="200",tenant="scraped"\} 1`,
		`truthserve_http_request_seconds_count\{route="/v1/projects/\{id\}/query",tenant="scraped"\} 1`,
	}
	for _, want := range wantRE {
		if !regexp.MustCompile(want).MatchString(scrape) {
			t.Errorf("scrape has no match for %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", scrape)
	}
}

// TestRequestIDFlowsThroughRouter: a caller-supplied X-Request-ID
// survives the tenant routing layer into both the response header and
// the error envelope of a project-level failure.
func TestRequestIDFlowsThroughRouter(t *testing.T) {
	_, ts := startServer(t)

	req, err := http.NewRequest("GET", ts.URL+"/v1/projects/nope/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "rid-route-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "rid-route-42" {
		t.Errorf("response header request id = %q", got)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"request_id":"rid-route-42"`) {
		t.Errorf("error envelope missing request id: %s", raw)
	}
	// A request without the header gets a minted id.
	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no request id minted for a bare request")
	}
}
