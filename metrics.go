package truthinference

import "truthinference/internal/metrics"

// PositiveLabel is the label index treated as the positive class ("T") by
// the F1-score on decision-making tasks, matching Eq. 4 of the paper.
const PositiveLabel = 1

// Accuracy is the fraction of truth-bearing tasks inferred correctly
// (paper Eq. 3).
func Accuracy(inferred []float64, truth map[int]float64) float64 {
	return metrics.Accuracy(inferred, truth)
}

// F1 is the F1-score of the positive class on decision-making tasks
// (paper Eq. 4).
func F1(inferred []float64, truth map[int]float64) float64 {
	return metrics.F1(inferred, truth, PositiveLabel)
}

// PrecisionRecall returns precision and recall of the positive class.
func PrecisionRecall(inferred []float64, truth map[int]float64) (precision, recall float64) {
	return metrics.PrecisionRecall(inferred, truth, PositiveLabel)
}

// MAE is the mean absolute error for numeric tasks (paper Eq. 5).
func MAE(inferred []float64, truth map[int]float64) float64 {
	return metrics.MAE(inferred, truth)
}

// RMSE is the root mean square error for numeric tasks (paper Eq. 5).
func RMSE(inferred []float64, truth map[int]float64) float64 {
	return metrics.RMSE(inferred, truth)
}
