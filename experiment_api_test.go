package truthinference

import (
	"math"
	"strings"
	"testing"

	"truthinference/internal/testutil"
)

// TestPublicExperimentHarness drives every Run* wrapper end-to-end on a
// small planted crowd, asserting the structural contracts a downstream
// user relies on.
func TestPublicExperimentHarness(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 100, NumWorkers: 12, Redundancy: 5, Seed: 1})
	cfg := ExperimentConfig{Seed: 1, Repeats: 2}
	methods := []Method{mustGet(t, "MV"), mustGet(t, "ZC"), mustGet(t, "D&S")}

	scores := RunFullComparison(methods, d, cfg)
	if len(scores) != 3 {
		t.Fatalf("full comparison returned %d scores", len(scores))
	}
	for _, s := range scores {
		if s.Err != "" || s.Accuracy < 0.7 {
			t.Errorf("%s: err=%q acc=%.3f", s.Method, s.Err, s.Accuracy)
		}
	}

	sweep := RunRedundancySweep(methods, d, []int{1, 5}, cfg)
	if len(sweep) != 2 || len(sweep[0].Scores) != 3 {
		t.Fatalf("sweep shape %d/%d", len(sweep), len(sweep[0].Scores))
	}

	qual := RunQualificationTest(methods, d, cfg)
	if len(qual) != 2 { // MV is not qualification-capable
		t.Fatalf("qualification returned %d results", len(qual))
	}

	hidden := RunHiddenTest(methods, d, []int{0, 30}, cfg)
	if len(hidden) != 2 || len(hidden[1].Scores) != 2 {
		t.Fatalf("hidden shape %d", len(hidden))
	}

	if out := RenderScores("x", true, scores); !strings.Contains(out, "D&S") {
		t.Error("RenderScores missing method")
	}
	if out := RenderSweep("x", sweep, MetricAccuracy); !strings.Contains(out, "r=5") {
		t.Error("RenderSweep missing column")
	}
	if out := RenderHidden("x", hidden, MetricF1); !strings.Contains(out, "p=30%") {
		t.Error("RenderHidden missing column")
	}
	if out := RenderQualification("x", true, qual); !strings.Contains(out, "ZC") {
		t.Error("RenderQualification missing method")
	}
}

func mustGet(t *testing.T, name string) Method {
	t.Helper()
	m, err := GetMethod(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQualificationVectorsPublic checks the bootstrap wrapper on both
// task families.
func TestQualificationVectorsPublic(t *testing.T) {
	dec := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 2})
	acc, mse := QualificationVectors(dec, 1)
	if acc == nil || mse != nil {
		t.Error("categorical dataset should yield an accuracy vector only")
	}
	num := testutil.Numeric(testutil.NumericSpec{NumTasks: 60, NumWorkers: 8, Redundancy: 4, Seed: 2})
	acc, mse = QualificationVectors(num, 1)
	if acc != nil || mse == nil {
		t.Error("numeric dataset should yield an MSE vector only")
	}
}

// TestFailureInjectionAdversarialTies: every answer pattern is an exact
// tie. Methods must return *some* valid label and never panic or emit
// NaN truths.
func TestFailureInjectionAdversarialTies(t *testing.T) {
	var answers []Answer
	for i := 0; i < 40; i++ {
		answers = append(answers,
			Answer{Task: i, Worker: 0, Value: 1},
			Answer{Task: i, Worker: 1, Value: 0},
		)
	}
	d, err := NewDataset("ties", Decision, 2, 40, 2, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodsForType(Decision) {
		res, err := m.Infer(d, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i, v := range res.Truth {
			if v != 0 && v != 1 {
				t.Errorf("%s: task %d label %v invalid under total ties", m.Name(), i, v)
			}
		}
	}
}

// TestFailureInjectionSingleWorker: one worker answering everything. The
// methods must echo that worker's answers (there is no other signal) and
// stay numerically sane.
func TestFailureInjectionSingleWorker(t *testing.T) {
	var answers []Answer
	for i := 0; i < 30; i++ {
		answers = append(answers, Answer{Task: i, Worker: 0, Value: float64(i % 2)})
	}
	d, err := NewDataset("solo", Decision, 2, 30, 1, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodsForType(Decision) {
		res, err := m.Infer(d, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		agree := 0
		for i, v := range res.Truth {
			if int(v) == i%2 {
				agree++
			}
		}
		// A single consistent voice should be followed on the vast
		// majority of tasks (label-symmetric methods may flip globally,
		// so accept either orientation). KOS is exempt: its cavity
		// messages exclude the answering worker, so a one-worker graph
		// carries zero information by construction and it falls back to
		// random labels.
		if m.Name() != "KOS" && agree < 24 && agree > 6 {
			t.Errorf("%s agreed with the only worker on %d/30 tasks", m.Name(), agree)
		}
		for _, q := range res.WorkerQuality {
			if math.IsNaN(q) || math.IsInf(q, 0) {
				t.Errorf("%s produced non-finite worker quality %v", m.Name(), q)
			}
		}
	}
}

// TestFailureInjectionMassiveSpam: 90% coin-flip workers. Nothing should
// crash, and the confusion-matrix methods should still clear the
// information floor.
func TestFailureInjectionMassiveSpam(t *testing.T) {
	const nw = 30
	acc := make([]float64, nw)
	for w := range acc {
		if w < 27 {
			acc[w] = 0.5
		} else {
			acc[w] = 0.95
		}
	}
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 300, NumWorkers: nw, Redundancy: 9, Accuracies: acc, Seed: 5})
	// BCC is excluded: a Gibbs sampler cannot reliably identify 3 good
	// workers among 27 coin-flippers within bounded sweeps (the paper's
	// own observation that BCC needs many iterations, §6.3.1(2)); the
	// deterministic EM methods lock on from the majority-vote start.
	for _, name := range []string{"D&S", "LFC"} {
		res, err := Infer(name, d, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AccuracyOf(d.Truth, res.Truth); got < 0.75 {
			t.Errorf("%s accuracy %.3f < 0.75 under 90%% spam", name, got)
		}
	}
}

// TestPosteriorValidityAcrossMethods: every posterior-producing method
// must emit rows that are probability distributions.
func TestPosteriorValidityAcrossMethods(t *testing.T) {
	d := testutil.Categorical(testutil.CrowdSpec{NumTasks: 60, NumWorkers: 10, Redundancy: 4, Seed: 7})
	for _, m := range MethodsForType(Decision) {
		res, err := m.Infer(d, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Posterior == nil {
			continue // KOS and PM are hard-label methods
		}
		for i, row := range res.Posterior {
			var sum float64
			for _, p := range row {
				if p < -1e-9 || p > 1+1e-9 || math.IsNaN(p) {
					t.Fatalf("%s: task %d posterior %v", m.Name(), i, row)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s: task %d posterior sums to %v", m.Name(), i, sum)
			}
		}
	}
}

// TestSaveLoadInferRoundTrip exercises the full persistence path through
// the public API.
func TestSaveLoadInferRoundTrip(t *testing.T) {
	d := SimulateDatasetScaled(DProduct, 1, 0.02)
	base := t.TempDir() + "/dp"
	if err := SaveDataset(base, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(base)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Infer("D&S", d, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer("D&S", got, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Truth {
		if a.Truth[i] != b.Truth[i] {
			t.Fatalf("truth diverges after TSV round trip at task %d", i)
		}
	}
}
