// Package truthinference is a from-scratch Go reproduction of the VLDB
// 2017 benchmark "Truth Inference in Crowdsourcing: Is the Problem
// Solved?" (Zheng, Li, Li, Shan, Cheng; PVLDB 10(5)).
//
// It provides:
//
//   - all 17 truth-inference methods surveyed by the paper (MV, ZC, GLAD,
//     D&S, Minimax, BCC, CBCC, LFC, CATD, PM, Multi, KOS, VI-BP, VI-MF,
//     LFC_N, Mean, Median) behind one Method interface;
//   - the task/worker/answer data model with TSV persistence;
//   - the evaluation metrics of §6.1.2 (Accuracy, F1, MAE, RMSE);
//   - calibrated synthetic versions of the paper's 5 benchmark datasets;
//   - the full experiment harness (redundancy sweeps, qualification test,
//     hidden test, crowd-data statistics) that regenerates every table
//     and figure of the paper's evaluation section;
//   - a deterministic parallel inference engine (internal/engine) behind
//     both of the above;
//   - an online inference subsystem (internal/stream) and serving daemon
//     (cmd/truthserve): streaming answer ingestion, warm-start
//     incremental re-inference seeded from the previous posterior
//     (Options.WarmStart), and an HTTP JSON API over live posteriors.
//
// Quick start:
//
//	ds := truthinference.SimulateDataset(truthinference.DProduct, 1)
//	res, err := truthinference.Infer("D&S", ds, truthinference.Options{Seed: 7})
//	if err != nil { ... }
//	acc := truthinference.Accuracy(res.Truth, ds.Truth)
//
// # Parallelism
//
// Options.Parallelism fans the EM hot loops of the iterative methods
// (D&S, GLAD, ZC, LFC, PM, CATD, BCC, CBCC, Minimax, VI-BP, VI-MF,
// LFC_N) out over a chunked worker pool: E-steps over tasks, M-steps
// over workers, message passing over answers. ExperimentConfig.Parallelism
// does the same for whole experiment cells — the (method × dataset ×
// repetition) triples of the Section-6 harness. Set either to
// AutoParallelism to use every CPU:
//
//	res, err := truthinference.Infer("D&S", ds, truthinference.Options{
//		Seed:        7,
//		Parallelism: truthinference.AutoParallelism,
//	})
//
// Parallel execution is bit-identical to sequential execution at every
// worker count. The engine guarantees this by construction rather than
// by tolerance: every parallel loop writes only to slots owned by its
// loop index (a task's posterior row, a worker's confusion rows, an
// answer's message), every floating-point accumulation happens inside a
// single loop index in a fixed order, cross-cutting reductions stay
// sequential, and stochastic steps (Gibbs draws, vote tie-breaks) use
// per-(iteration, entity) RNG streams derived by hashing instead of a
// shared generator. Chunk layout therefore decides only which goroutine
// executes an iteration, never the arithmetic.
//
// The package re-exports the internal building blocks through type
// aliases so downstream users only ever import this one path.
package truthinference

import (
	"fmt"
	"sort"

	"truthinference/internal/core"
	"truthinference/internal/dataset"
	"truthinference/internal/methods/bcc"
	"truthinference/internal/methods/catd"
	"truthinference/internal/methods/direct"
	"truthinference/internal/methods/ds"
	"truthinference/internal/methods/glad"
	"truthinference/internal/methods/kos"
	"truthinference/internal/methods/lfc"
	"truthinference/internal/methods/minimax"
	"truthinference/internal/methods/multi"
	"truthinference/internal/methods/pm"
	"truthinference/internal/methods/vi"
	"truthinference/internal/methods/zc"
)

// Core data-model and framework aliases. See the internal packages for
// full documentation of each type.
type (
	// Dataset is a crowdsourced answer set with optional ground truth.
	Dataset = dataset.Dataset
	// Answer is one worker's answer for one task.
	Answer = dataset.Answer
	// TaskType enumerates decision-making, single-choice and numeric tasks.
	TaskType = dataset.TaskType
	// Stats is the Table-5 statistics row of a dataset.
	Stats = dataset.Stats
	// Method is a truth-inference algorithm.
	Method = core.Method
	// Options parameterizes an inference run (seed, convergence, golden
	// tasks, qualification initialization).
	Options = core.Options
	// Result is the output of an inference run.
	Result = core.Result
	// Capabilities mirrors a method's Table-4 row.
	Capabilities = core.Capabilities
)

// Task type constants re-exported from the data model.
const (
	Decision     = dataset.Decision
	SingleChoice = dataset.SingleChoice
	Numeric      = dataset.Numeric
)

// AutoParallelism, assigned to Options.Parallelism or
// ExperimentConfig.Parallelism, uses one worker goroutine per available
// CPU. 0 or 1 run sequentially; results are identical either way.
const AutoParallelism = core.AutoParallelism

// Errors re-exported from the framework.
var (
	ErrGoldenUnsupported        = core.ErrGoldenUnsupported
	ErrQualificationUnsupported = core.ErrQualificationUnsupported
	ErrTaskType                 = core.ErrTaskType
)

// NewDataset constructs and validates a Dataset; see dataset.New.
func NewDataset(name string, typ TaskType, numChoices, numTasks, numWorkers int, answers []Answer, truth map[int]float64) (*Dataset, error) {
	return dataset.New(name, typ, numChoices, numTasks, numWorkers, answers, truth)
}

// LoadDataset reads <base>.answers.tsv and <base>.truth.tsv.
func LoadDataset(base string) (*Dataset, error) { return dataset.LoadFiles(base) }

// SaveDataset writes <base>.answers.tsv and <base>.truth.tsv.
func SaveDataset(base string, d *Dataset) error { return dataset.SaveFiles(base, d) }

// ComputeStats returns the Table-5 statistics of a dataset.
func ComputeStats(d *Dataset) Stats { return dataset.ComputeStats(d) }

// NewRegistry returns fresh instances of all 17 methods, in the paper's
// Table-4/Table-6 order.
func NewRegistry() []Method {
	return []Method{
		direct.NewMV(),
		zc.New(),
		glad.New(),
		ds.New(),
		minimax.New(),
		bcc.New(),
		bcc.NewCBCC(),
		lfc.New(),
		catd.New(),
		pm.New(),
		multi.New(),
		kos.New(),
		vi.NewBP(),
		vi.NewMF(),
		lfc.NewNumeric(),
		direct.NewMean(),
		direct.NewMedian(),
	}
}

// MethodNames returns the names of all 17 methods in registry order.
func MethodNames() []string {
	reg := NewRegistry()
	out := make([]string, len(reg))
	for i, m := range reg {
		out[i] = m.Name()
	}
	return out
}

// GetMethod returns the method with the given paper name ("MV", "ZC",
// "GLAD", "D&S", "Minimax", "BCC", "CBCC", "LFC", "CATD", "PM", "Multi",
// "KOS", "VI-BP", "VI-MF", "LFC_N", "Mean", "Median"), or an error listing
// the valid names.
func GetMethod(name string) (Method, error) {
	for _, m := range NewRegistry() {
		if m.Name() == name {
			return m, nil
		}
	}
	names := MethodNames()
	sort.Strings(names)
	return nil, fmt.Errorf("truthinference: unknown method %q (valid: %v)", name, names)
}

// MethodsForType returns the methods applicable to datasets of type t, in
// registry order — e.g. the 14 decision-making methods compared in
// Figure 4 or the 5 numeric methods of Figure 6.
func MethodsForType(t TaskType) []Method {
	var out []Method
	for _, m := range NewRegistry() {
		if m.Capabilities().SupportsType(t) {
			out = append(out, m)
		}
	}
	return out
}

// Infer runs the named method on d.
func Infer(method string, d *Dataset, opts Options) (*Result, error) {
	m, err := GetMethod(method)
	if err != nil {
		return nil, err
	}
	return m.Infer(d, opts)
}
