package truthinference

import "truthinference/internal/simulate"

// DatasetKind selects one of the five benchmark datasets of Table 5.
type DatasetKind = simulate.Kind

// The five benchmark datasets in Table-5 order.
const (
	DProduct = simulate.DProduct
	DPosSent = simulate.DPosSent
	SRel     = simulate.SRel
	SAdult   = simulate.SAdult
	NEmotion = simulate.NEmotion
)

// DatasetKinds lists the five benchmark datasets in Table-5 order.
var DatasetKinds = simulate.Kinds

// SimulateDataset generates the calibrated synthetic version of one of
// the paper's five benchmark datasets, deterministically from seed. The
// internal/simulate package documentation records the calibration
// targets and why synthetic data substitutes for the paper's (offline)
// crowd answers.
func SimulateDataset(kind DatasetKind, seed int64) *Dataset {
	return simulate.Generate(kind, seed)
}

// SimulateDatasetScaled generates a size-scaled variant (0 < scale ≤ 1,
// anything else panics) preserving the worker-population mixture and
// redundancy; used to bound test and bench runtime.
func SimulateDatasetScaled(kind DatasetKind, seed int64, scale float64) *Dataset {
	return simulate.GenerateScaled(kind, seed, scale)
}

// SimulateAll generates all five benchmark datasets at full scale.
func SimulateAll(seed int64) []*Dataset {
	return simulate.All(seed)
}
