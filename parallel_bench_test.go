package truthinference

// Sequential-vs-parallel engine benchmarks. Each Benchmark*Parallelism
// target runs the same inference (or experiment batch) twice: the
// /sequential sub-benchmark with one worker and the /parallel
// sub-benchmark with one worker per CPU. On a multicore box the parallel
// variants show the engine's wall-clock win (the outputs themselves are
// bit-identical — see TestParallelMatchesSequential); on GOMAXPROCS=1
// they double as an overhead regression check.

import (
	"runtime"
	"testing"

	"truthinference/internal/dataset"
	"truthinference/internal/experiment"
	"truthinference/internal/simulate"
)

// parallelBenchScale sizes the datasets large enough that the hot loops
// dominate goroutine overhead.
const parallelBenchScale = 0.3

func benchInferParallelism(b *testing.B, method string, kind simulate.Kind) {
	d := simulate.GenerateScaled(kind, 1, parallelBenchScale)
	m, err := GetMethod(method)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Infer(d, Options{Seed: 1, Parallelism: variant.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDSParallelism(b *testing.B)      { benchInferParallelism(b, "D&S", simulate.DProduct) }
func BenchmarkGLADParallelism(b *testing.B)    { benchInferParallelism(b, "GLAD", simulate.DProduct) }
func BenchmarkZCParallelism(b *testing.B)      { benchInferParallelism(b, "ZC", simulate.DPosSent) }
func BenchmarkLFCParallelism(b *testing.B)     { benchInferParallelism(b, "LFC", simulate.SRel) }
func BenchmarkMinimaxParallelism(b *testing.B) { benchInferParallelism(b, "Minimax", simulate.SAdult) }
func BenchmarkBCCParallelism(b *testing.B)     { benchInferParallelism(b, "BCC", simulate.DProduct) }
func BenchmarkVIMFParallelism(b *testing.B)    { benchInferParallelism(b, "VI-MF", simulate.DPosSent) }
func BenchmarkLFCNParallelism(b *testing.B)    { benchInferParallelism(b, "LFC_N", simulate.NEmotion) }

// BenchmarkSchedulerParallelism measures the batched experiment
// scheduler: a redundancy sweep over every decision-making method, run as
// sequential cells vs one cell per CPU.
func BenchmarkSchedulerParallelism(b *testing.B) {
	d := simulate.GenerateScaled(simulate.DProduct, 1, 0.15)
	methods := MethodsForType(Decision)
	for _, variant := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := experiment.Config{Seed: 1, Repeats: 2, MaxIterations: 20, Parallelism: variant.workers}
			for i := 0; i < b.N; i++ {
				pts := experiment.RedundancySweep(methods, d, []int{1, 3}, cfg)
				if len(pts) != 2 {
					b.Fatal("bad sweep")
				}
			}
		})
	}
}

// BenchmarkBenchallCells measures a Table-6 style full comparison — the
// cmd/benchall inner loop — at both parallelism levels.
func BenchmarkBenchallCells(b *testing.B) {
	datasets := make([]*dataset.Dataset, len(simulate.Kinds))
	for i, k := range simulate.Kinds {
		datasets[i] = simulate.GenerateScaled(k, 1, 0.1)
	}
	for _, variant := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := experiment.Config{Seed: 1, Repeats: 1, MaxIterations: 20, Parallelism: variant.workers}
			for i := 0; i < b.N; i++ {
				for _, d := range datasets {
					if len(experiment.FullComparison(NewRegistry(), d, cfg)) == 0 {
						b.Fatal("no methods ran")
					}
				}
			}
		})
	}
}
