package truthinference

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (cmd/benchall's package doc lists the
// experiment index behind its -exp flag) plus the ablation benches of
// ablation_bench_test.go. Each bench reports, via
// b.ReportMetric, the headline quality number of the artifact it
// regenerates alongside the usual ns/op, so `go test -bench=. -benchmem`
// doubles as a compact reproduction log. Dataset sizes are scaled to keep
// a full -bench=. run in the minutes range; `cmd/benchall -scale 1` runs
// the same experiments at the paper's full sizes.

import (
	"fmt"
	"testing"

	"truthinference/internal/dataset"
	"truthinference/internal/experiment"
	"truthinference/internal/simulate"
)

// benchScale keeps bench datasets small enough for tight iteration while
// preserving the worker-population mixtures.
const benchScale = 0.1

var benchCfg = experiment.Config{Seed: 1, Repeats: 1}

func benchData(b *testing.B, kind simulate.Kind) *dataset.Dataset {
	b.Helper()
	return simulate.GenerateScaled(kind, 1, benchScale)
}

// BenchmarkTable5Stats regenerates Table 5: the per-dataset statistics of
// all five benchmark datasets plus the §6.2.1 consistency values.
func BenchmarkTable5Stats(b *testing.B) {
	datasets := make([]*dataset.Dataset, len(simulate.Kinds))
	for i, k := range simulate.Kinds {
		datasets[i] = benchData(b, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range datasets {
			s := dataset.ComputeStats(d)
			if s.NumTasks == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
}

// BenchmarkFig2Redundancy regenerates the Figure 2 worker-redundancy
// histograms.
func BenchmarkFig2Redundancy(b *testing.B) {
	datasets := make([]*dataset.Dataset, len(simulate.Kinds))
	for i, k := range simulate.Kinds {
		datasets[i] = benchData(b, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range datasets {
			_, counts := dataset.RedundancyHistogram(d, 10)
			if len(counts) != 10 {
				b.Fatal("bad histogram")
			}
		}
	}
}

// BenchmarkFig3WorkerQuality regenerates the Figure 3 worker-quality
// histograms (accuracy for categorical crowds, RMSE for numeric).
func BenchmarkFig3WorkerQuality(b *testing.B) {
	datasets := make([]*dataset.Dataset, len(simulate.Kinds))
	for i, k := range simulate.Kinds {
		datasets[i] = benchData(b, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range datasets {
			if d.Categorical() {
				dataset.QualityHistogram(dataset.WorkerAccuracy(d), 0, 1, 10)
			} else {
				dataset.QualityHistogram(dataset.WorkerRMSE(d), 0, 50, 10)
			}
		}
	}
}

// BenchmarkFig4RedundancyDecision regenerates Figure 4: the redundancy
// sweep of the 14 decision-making methods on D_Product and D_PosSent.
func BenchmarkFig4RedundancyDecision(b *testing.B) {
	prod := benchData(b, simulate.DProduct)
	sent := benchData(b, simulate.DPosSent)
	methods := MethodsForType(Decision)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RedundancySweep(methods, prod, []int{1, 2, 3}, benchCfg)
		experiment.RedundancySweep(methods, sent, []int{1, 10, 20}, benchCfg)
	}
}

// BenchmarkFig5RedundancySingle regenerates Figure 5: the redundancy sweep
// of the 10 single-choice methods on S_Rel and S_Adult.
func BenchmarkFig5RedundancySingle(b *testing.B) {
	rel := benchData(b, simulate.SRel)
	adult := benchData(b, simulate.SAdult)
	methods := MethodsForType(SingleChoice)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RedundancySweep(methods, rel, []int{1, 3, 5}, benchCfg)
		experiment.RedundancySweep(methods, adult, []int{1, 5, 9}, benchCfg)
	}
}

// BenchmarkFig6RedundancyNumeric regenerates Figure 6: the redundancy
// sweep of the 5 numeric methods on N_Emotion.
func BenchmarkFig6RedundancyNumeric(b *testing.B) {
	d := benchData(b, simulate.NEmotion)
	methods := MethodsForType(Numeric)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RedundancySweep(methods, d, []int{1, 4, 7, 10}, benchCfg)
	}
}

// BenchmarkTable6 regenerates Table 6 per dataset × method: quality and
// running time of every applicable method on the complete data. The
// per-method sub-benchmarks expose the paper's efficiency ordering
// (direct < EM < Gibbs/variational < gradient-based).
func BenchmarkTable6(b *testing.B) {
	for _, kind := range simulate.Kinds {
		d := benchData(b, kind)
		for _, m := range NewRegistry() {
			if !m.Capabilities().SupportsType(d.Type) {
				continue
			}
			m := m
			b.Run(fmt.Sprintf("%s/%s", d.Name, m.Name()), func(b *testing.B) {
				var quality float64
				for i := 0; i < b.N; i++ {
					res, err := m.Infer(d, Options{Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					if d.Categorical() {
						quality = Accuracy(res.Truth, d.Truth)
					} else {
						quality = RMSE(res.Truth, d.Truth)
					}
				}
				if d.Categorical() {
					b.ReportMetric(100*quality, "accuracy%")
				} else {
					b.ReportMetric(quality, "rmse")
				}
			})
		}
	}
}

// BenchmarkTable7Qualification regenerates Table 7: the effect of
// qualification-test initialization on the 8 qualification-capable
// methods, on every dataset.
func BenchmarkTable7Qualification(b *testing.B) {
	for _, kind := range simulate.Kinds {
		d := benchData(b, kind)
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiment.QualificationTest(NewRegistry(), d, benchCfg)
				if len(res) == 0 {
					b.Fatal("no qualification-capable methods")
				}
			}
		})
	}
}

// BenchmarkFig7HiddenDecision regenerates Figure 7: hidden-test sweeps on
// the decision-making datasets.
func BenchmarkFig7HiddenDecision(b *testing.B) {
	prod := benchData(b, simulate.DProduct)
	sent := benchData(b, simulate.DPosSent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.HiddenTest(NewRegistry(), prod, []int{0, 25, 50}, benchCfg)
		experiment.HiddenTest(NewRegistry(), sent, []int{0, 25, 50}, benchCfg)
	}
}

// BenchmarkFig8HiddenSingle regenerates Figure 8: hidden-test sweeps on
// the single-choice datasets.
func BenchmarkFig8HiddenSingle(b *testing.B) {
	rel := benchData(b, simulate.SRel)
	adult := benchData(b, simulate.SAdult)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.HiddenTest(NewRegistry(), rel, []int{0, 25, 50}, benchCfg)
		experiment.HiddenTest(NewRegistry(), adult, []int{0, 25, 50}, benchCfg)
	}
}

// BenchmarkFig9HiddenNumeric regenerates Figure 9: hidden-test sweeps on
// N_Emotion.
func BenchmarkFig9HiddenNumeric(b *testing.B) {
	d := benchData(b, simulate.NEmotion)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.HiddenTest(NewRegistry(), d, []int{0, 25, 50}, benchCfg)
	}
}
